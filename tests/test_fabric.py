"""Unit tests for the multi-switch fabric: topology, placement, fabric sync.

The differential battery (``-m fabric`` in test_differential_scenarios.py)
sweeps the fabric against the linear oracle at scale; these tests pin the
individual mechanisms — deterministic routing, overlap-component placement,
version-exact rollback, all-or-nothing fabric commits, per-switch serving —
on small hand-checkable inputs, so they run with the tier-1 suite.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.depindex import DependencyIndex
from repro.api.control import RuleProgram
from repro.controller import SdnController
from repro.controller.fabric import (
    FabricController,
    Topology,
    plan_placement,
)
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig
from repro.exceptions import ControlPlaneError, ExperimentError, UpdateError
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.rules.trace import FabricPacket, generate_fabric_trace, generate_trace


def disjoint_rule(rule_id: int) -> Rule:
    """Rules on disjoint dst_port windows: no overlaps, one component each."""
    low = rule_id * 100
    return Rule.build(rule_id=rule_id, priority=rule_id, dst_port=f"{low}:{low + 99}")


def disjoint_ruleset(count: int) -> RuleSet:
    return RuleSet([disjoint_rule(index) for index in range(count)], name=f"disjoint{count}")


class TestTopology:
    def test_line_routes_and_paths(self):
        topo = Topology.line(4)
        assert topo.switches == (0, 1, 2, 3)
        assert topo.ingresses() == (0, 1, 2, 3)
        assert topo.route_path(0).hops == (0, 1, 2, 3)
        assert topo.route_path(1).hops == (1, 2, 3)
        assert topo.route_path(2).hops == (2, 1, 0)
        assert topo.route_path(3).hops == (3, 2, 1, 0)
        assert topo.min_path_length == 3

    def test_single_switch_line(self):
        topo = Topology.line(1)
        assert topo.route_path(0).hops == (0,)
        assert topo.min_path_length == 1

    def test_fattree_shape(self):
        topo = Topology.fattree(7)
        # edges home alternately into the two aggregation switches
        assert topo.neighbors(3) == (1,)
        assert topo.neighbors(4) == (2,)
        assert topo.neighbors(0) == (1, 2)
        # cross-pod paths cross the core; all served paths here are cross-pod
        assert topo.route_path(3).hops == (3, 1, 0, 2, 4)
        assert topo.min_path_length == 5
        assert topo.ingresses() == (3, 4, 5, 6)

    def test_routing_is_deterministic(self):
        first = Topology.fattree(9)
        second = Topology.fattree(9)
        assert [p.hops for p in first.served_paths()] == [
            p.hops for p in second.served_paths()
        ]

    def test_shape_validation(self):
        with pytest.raises(ControlPlaneError):
            Topology.line(0)
        with pytest.raises(ControlPlaneError):
            Topology.fattree(4)
        with pytest.raises(ControlPlaneError):
            Topology([1, 1], [], {1: 1})
        with pytest.raises(ControlPlaneError):
            Topology([1, 2], [(1, 3)], {1: 2})
        with pytest.raises(ControlPlaneError):
            Topology([1, 2], [(1, 2)], {1: 9})
        with pytest.raises(ControlPlaneError):  # disconnected route
            Topology([1, 2, 3], [(1, 2)], {1: 3})
        with pytest.raises(ControlPlaneError):  # no routes at all
            Topology([1, 2], [(1, 2)], {})

    def test_unknown_ingress(self):
        topo = Topology.line(3)
        topo.route_path(2)
        with pytest.raises(ControlPlaneError):
            topo.route_path(9)


class TestOverlapComponents:
    def test_catch_all_merges_everything(self, handcrafted_ruleset):
        index = DependencyIndex(handcrafted_ruleset.rules())
        # rule 4 is a catch-all: it overlaps every other rule
        assert index.components() == [(0, 1, 2, 3, 4)]

    def test_disjoint_rules_are_singletons(self):
        index = DependencyIndex(disjoint_ruleset(5).rules())
        assert index.components() == [(0,), (1,), (2,), (3,), (4,)]

    def test_empty_index(self):
        assert DependencyIndex().components() == []

    def test_components_partition_the_rules(self, small_fw_ruleset):
        index = DependencyIndex(small_fw_ruleset.rules())
        components = index.components()
        seen = [rid for component in components for rid in component]
        assert sorted(seen) == sorted(rule.rule_id for rule in small_fw_ruleset.rules())
        assert len(seen) == len(set(seen))


class TestPlacement:
    def test_disjoint_rules_partition_mod_k(self):
        plan = plan_placement(tuple(disjoint_ruleset(6).rules()), Topology.line(3))
        assert plan.k == 2
        assert plan.groups == ((0, 2, 4), (1, 3, 5))
        assert plan.hosts == ((0, 1), (2,))
        assert plan.switches_for_rule(0) == (0, 1)
        assert plan.switches_for_rule(3) == (2,)

    def test_every_path_covers_every_group(self, small_acl_ruleset):
        for topo in (Topology.line(4), Topology.fattree(6)):
            plan = plan_placement(tuple(small_acl_ruleset.rules()), topo)
            for path in topo.served_paths():
                covered = set()
                for dpid in path.hops:
                    covered.update(rule.rule_id for rule in plan.rules_for(dpid))
                assert covered == {rule.rule_id for rule in small_acl_ruleset.rules()}

    def test_partitioned_not_replicated(self, small_acl_ruleset):
        rules = tuple(small_acl_ruleset.rules())
        plan = plan_placement(rules, Topology.line(4))
        full = len(rules) * 4
        assert plan.total_rule_slots < full
        assert plan.max_switch_rules < len(rules)
        assert 1.0 <= plan.replication_factor < 4.0

    def test_subsets_keep_install_order_and_priorities(self, small_fw_ruleset):
        rules = tuple(small_fw_ruleset.rules())
        position = {rule.rule_id: index for index, rule in enumerate(rules)}
        by_id = {rule.rule_id: rule for rule in rules}
        plan = plan_placement(rules, Topology.line(3))
        for subset in plan.switch_rules.values():
            positions = [position[rule.rule_id] for rule in subset]
            assert positions == sorted(positions)
            for rule in subset:
                assert rule == by_id[rule.rule_id]  # never renumbered

    def test_assignment_is_stable_under_singleton_growth(self):
        topo = Topology.line(3)
        before = plan_placement(tuple(disjoint_ruleset(6).rules()), topo)
        after = plan_placement(tuple(disjoint_ruleset(7).rules()), topo)
        # adding rule 6 (bucket 0) moves nothing that was already placed
        assert before.hosts == after.hosts
        for bucket, ids in enumerate(before.groups):
            assert set(ids) <= set(after.groups[bucket])

    def test_empty_program(self):
        plan = plan_placement((), Topology.line(3))
        assert plan.total_rule_slots == 0
        assert plan.replication_factor == 0.0
        assert plan.rules_for(0) == ()
        with pytest.raises(ControlPlaneError):
            plan.switches_for_rule(0)


class TestRollback:
    def test_rollback_restores_pre_commit_version(self):
        classifier = ConfigurableClassifier()
        plane = classifier.control
        plane.begin().insert(disjoint_rule(0)).commit()
        snapshot = plane.program()
        commit = plane.begin().insert(disjoint_rule(1)).remove(0).commit()
        assert plane.version == snapshot.version + 1
        epoch_after_commit = plane.epoch
        plane.rollback(commit)
        assert plane.version == snapshot.version
        assert plane.program().rule_ids() == snapshot.rule_ids()
        assert plane.epoch > epoch_after_commit  # engines mutated: caches must notice

    def test_only_latest_commit_is_undoable(self):
        plane = ConfigurableClassifier().control
        first = plane.begin().insert(disjoint_rule(0)).commit()
        plane.begin().insert(disjoint_rule(1)).commit()
        with pytest.raises(UpdateError):
            plane.rollback(first)

    def test_empty_commit_rollback_is_a_noop(self):
        plane = ConfigurableClassifier().control
        commit = plane.apply_delta(RuleProgram(0, ()).diff(RuleProgram(0, ())))
        version, epoch = plane.version, plane.epoch
        plane.rollback(commit)
        assert (plane.version, plane.epoch) == (version, epoch)


class TestFabricController:
    def test_install_places_subsets(self, small_acl_ruleset):
        fabric = FabricController(Topology.line(4))
        fabric.install(small_acl_ruleset)
        assert fabric.version == 1
        assert fabric.commits == 1
        for switch in fabric.switches():
            planned = fabric.plan.rules_for(switch.datapath_id)
            assert switch.classifier.installed_rules == len(planned)
            assert switch.classifier.control.program().rules == planned

    def test_serve_matches_linear_oracle(self, small_acl_ruleset):
        topo = Topology.line(4)
        fabric = FabricController(topo)
        fabric.install(small_acl_ruleset)
        trace = generate_fabric_trace(
            small_acl_ruleset, topo.ingresses(), 150, seed=5, churn=0.05
        )
        result = fabric.serve(trace)
        assert result.packets == len(trace)
        for packet, record in zip(trace, result.results):
            truth = small_acl_ruleset.highest_priority_match(packet.header)
            if truth is None:
                assert not record.matched
            else:
                assert record.rule_id == truth.rule_id
                assert record.priority == truth.priority
                assert record.action == truth.action.value

    def test_per_switch_accounting_sums(self, small_acl_ruleset):
        topo = Topology.line(3)
        fabric = FabricController(topo)
        fabric.install(small_acl_ruleset)
        trace = generate_fabric_trace(small_acl_ruleset, topo.ingresses(), 90, seed=9)
        result = fabric.serve(trace)
        assert result.hop_lookups == sum(s.packets for s in result.per_switch.values())
        assert result.hop_lookups == sum(
            len(topo.route_path(packet.ingress)) for packet in trace
        )
        assert result.session.packets == result.hop_lookups
        for dpid, stats in result.per_switch.items():
            switch = fabric.switch(dpid)
            assert switch.stats.packets_classified == stats.packets
            assert switch.stats.packets_matched == stats.hits

    def test_commit_converges_only_affected_switches(self):
        fabric = FabricController(Topology.line(3))
        fabric.install(disjoint_ruleset(6))
        versions = {s.datapath_id: s.classifier.control.version for s in fabric.switches()}
        # rule 6 lands in bucket 0, hosted on switches 0 and 1 only
        fabric.begin().insert(disjoint_rule(6)).commit()
        assert fabric.switch(0).classifier.control.version == versions[0] + 1
        assert fabric.switch(1).classifier.control.version == versions[1] + 1
        assert fabric.switch(2).classifier.control.version == versions[2]

    def test_duplicate_insert_and_unknown_remove_fail_cleanly(self):
        fabric = FabricController(Topology.line(2))
        fabric.install(disjoint_ruleset(4))
        with pytest.raises(UpdateError):
            fabric.begin().insert(disjoint_rule(0)).commit()
        with pytest.raises(UpdateError):
            fabric.begin().remove(99).commit()
        assert fabric.version == 1
        assert fabric.rolled_back_commits == 0  # rejected before any switch delta

    def test_remove_and_reinsert_same_txn_is_a_switch_noop(self):
        fabric = FabricController(Topology.line(3))
        fabric.install(disjoint_ruleset(6))
        versions = {s.datapath_id: s.classifier.control.version for s in fabric.switches()}
        # per-switch programs are content-compared, so remove+reinsert in one
        # transaction diffs to empty per-switch deltas (the fabric's own
        # version still advances: the logical delta was non-empty)
        fabric.begin().remove(0).insert(disjoint_rule(0)).commit()
        assert fabric.version == 2
        assert {
            s.datapath_id: s.classifier.control.version for s in fabric.switches()
        } == versions

    def test_single_switch_fabric_pins_single_switch_behavior(self, small_acl_ruleset):
        """Regression: a 1-switch fabric is exactly the old single-switch sync."""
        fabric = FabricController(Topology.line(1))
        fabric.install(small_acl_ruleset)
        reference = ConfigurableClassifier()
        for rule in small_acl_ruleset.rules():
            reference.install_rule(rule)
        assert fabric.plan.replication_factor == 1.0
        switch = fabric.switch(0)
        assert switch.classifier.control.program().rules == tuple(
            small_acl_ruleset.rules()
        )
        trace = generate_trace(small_acl_ruleset, count=80, seed=21)
        for header in trace:
            via_fabric = fabric.classify(FabricPacket(0, header))
            direct = reference.classify(header)
            assert via_fabric == direct

    def test_serve_rejects_unknown_ingress_and_empty_trace(self, small_acl_ruleset):
        fabric = FabricController(Topology.line(2))
        fabric.install(small_acl_ruleset)
        with pytest.raises(ControlPlaneError):
            fabric.serve([])
        header = generate_trace(small_acl_ruleset, count=1, seed=3)[0]
        with pytest.raises(ControlPlaneError):
            fabric.serve([FabricPacket(7, header)])


class TestSyncRulesetAtomicity:
    def _tiny_capacity_config(self, entries: int) -> ClassifierConfig:
        base = ClassifierConfig()
        provisioning = replace(base.provisioning, rule_filter_entries=entries)
        return replace(base, provisioning=provisioning)

    def test_oversized_sync_rejects_whole_delta(self):
        controller = SdnController()
        switch = controller.add_switch(1, config=self._tiny_capacity_config(2))
        controller.push_ruleset(1, disjoint_ruleset(2))
        before = switch.classifier.control.program()
        # the fix: the old per-op sync would land a partial prefix of this
        # delta; the fabric commit path rejects it atomically
        report = controller.sync_ruleset(1, disjoint_ruleset(5))
        assert report.requested == 3
        assert report.rejected == report.requested
        assert report.accepted == 0
        assert not report.success
        assert report.errors and "capacity" in report.errors[0]
        after = switch.classifier.control.program()
        assert after.version == before.version
        assert after.rules == before.rules
        assert switch.stats.flow_mods_failed == 3

    def test_successful_sync_is_minimal_and_counted(self, small_acl_ruleset):
        controller = SdnController()
        switch = controller.add_switch(1)
        rules = small_acl_ruleset.rules()
        controller.push_ruleset(1, RuleSet(rules[:10], name="first"))
        target = RuleSet(rules[5:15], name="second")
        report = controller.sync_ruleset(1, target)
        assert report.success
        assert report.requested == report.accepted == 10  # 5 removals + 5 inserts
        assert switch.stats.flow_mods_applied == 10 + 10  # push + sync
        assert switch.classifier.control.program().rule_ids() == tuple(
            rule.rule_id for rule in target.rules()
        )
        again = controller.sync_ruleset(1, target)
        assert again.requested == 0 and again.success


class TestFabricTrace:
    def test_deterministic_and_ingress_tagged(self, small_acl_ruleset):
        ingresses = (0, 2, 5)
        first = generate_fabric_trace(small_acl_ruleset, ingresses, 120, seed=4, churn=0.1)
        second = generate_fabric_trace(small_acl_ruleset, ingresses, 120, seed=4, churn=0.1)
        assert first == second
        assert all(packet.ingress in ingresses for packet in first)
        assert len(first) == 120

    def test_flows_stick_to_their_ingress(self, small_acl_ruleset):
        trace = generate_fabric_trace(small_acl_ruleset, (0, 1, 2, 3), 300, seed=8)
        by_header = {}
        for packet in trace:
            by_header.setdefault(packet.header, set()).add(packet.ingress)
        # every repeated flow enters the fabric at one fixed switch
        assert all(len(ingresses) == 1 for ingresses in by_header.values())
        assert any(ingresses for ingresses in by_header.values())

    def test_validation(self, small_acl_ruleset):
        with pytest.raises(ExperimentError):
            generate_fabric_trace(small_acl_ruleset, (), 10)
        with pytest.raises(ExperimentError):
            generate_fabric_trace(small_acl_ruleset, (0,), -1)
        with pytest.raises(ExperimentError):
            generate_fabric_trace(small_acl_ruleset, (0,), 10, churn=1.5)

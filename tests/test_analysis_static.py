"""Static ruleset analyzer: dependency index, lint passes, fixtures, CLI."""

from __future__ import annotations

import json

import pytest

import repro.analysis.depindex as depindex_module
from repro.analysis.depindex import DependencyIndex, rule_bounds, rule_covers
from repro.analysis.fixtures import clean_ruleset, seeded_ruleset, write_fixtures
from repro.analysis.lint import LINT_CATEGORIES, analyze_ruleset
from repro.cli import main as cli_main
from repro.exceptions import RuleSetError
from repro.rules.classbench import FilterFlavor, generate_ruleset
from repro.rules.parser import (
    format_classbench,
    load_classbench_file,
    parse_classbench_line,
)
from repro.rules.rule import Rule, RuleAction
from repro.rules.ruleset import RuleSet


def _ruleset(*rules: Rule) -> RuleSet:
    return RuleSet(rules, name="unit")


# ---------------------------------------------------------------------------
# DependencyIndex
# ---------------------------------------------------------------------------


class TestDependencyIndex:
    def test_overlapping_matches_rule_overlaps_oracle(self):
        ruleset = generate_ruleset(FilterFlavor.FW, 120, seed=7)
        index = DependencyIndex(ruleset.rules())
        for rule in ruleset:
            oracle = {
                other.rule_id
                for other in ruleset
                if other.rule_id != rule.rule_id and rule.overlaps(other)
            }
            assert set(index.overlapping(rule)) == oracle

    def test_incremental_maintenance_equals_rebuild(self):
        ruleset = generate_ruleset(FilterFlavor.ACL, 80, seed=11)
        rules = ruleset.rules()
        incremental = DependencyIndex(rules[: len(rules) // 2])
        for rule in rules[len(rules) // 2 :]:
            incremental.add_rule(rule)
        removed = [rule.rule_id for rule in rules[::5]]
        for rule_id in removed:
            incremental.remove_rule(rule_id)
        fresh = DependencyIndex(rule for rule in rules if rule.rule_id not in set(removed))
        assert len(incremental) == len(fresh)
        probe = rules[1]
        assert set(incremental.overlapping(probe)) == set(fresh.overlapping(probe))

    def test_remove_unknown_rule_is_ignored(self):
        index = DependencyIndex([Rule.build(0, 0)])
        index.remove_rule(999)
        assert len(index) == 1

    def test_query_rule_need_not_be_indexed(self):
        installed = Rule.build(0, 0, src="10.0.0.0/8")
        index = DependencyIndex([installed])
        outsider = Rule.build(5, 5, src="10.1.0.0/16")
        assert index.overlapping(outsider) == [0]
        disjoint = Rule.build(6, 6, src="11.0.0.0/8")
        assert index.overlapping(disjoint) == []

    def test_self_excluded_for_members(self):
        rule = Rule.build(3, 1)
        index = DependencyIndex([rule])
        assert index.overlapping(rule) == []
        assert 3 in index and 4 not in index

    def test_python_fallback_matches_numpy(self, monkeypatch):
        ruleset = generate_ruleset(FilterFlavor.IPC, 60, seed=3)
        with_numpy = DependencyIndex(ruleset.rules())
        monkeypatch.setattr(depindex_module, "_np", None)
        without_numpy = DependencyIndex(ruleset.rules())
        assert not without_numpy.uses_numpy
        for rule in ruleset:
            assert set(with_numpy.overlapping(rule)) == set(without_numpy.overlapping(rule))

    def test_dependency_depth_counts_higher_priority_overlaps(self):
        broad = Rule.build(0, 0)  # wildcard, highest priority
        middle = Rule.build(1, 1, src="10.0.0.0/8")
        narrow = Rule.build(2, 2, src="10.1.0.0/16")
        index = DependencyIndex([broad, middle, narrow])
        assert index.dependency_depth(0) == 0
        assert index.dependency_depth(1) == 1
        assert index.dependency_depth(2) == 2
        assert index.overlap_degrees() == {0: 2, 1: 2, 2: 2}

    def test_rule_covers(self):
        outer = Rule.build(0, 0, src="10.0.0.0/8")
        inner = Rule.build(1, 1, src="10.1.0.0/16", protocol=6)
        assert rule_covers(outer, inner)
        assert not rule_covers(inner, outer)
        bounds = rule_bounds(inner)
        assert bounds[8] == bounds[9] == 6  # exact protocol pins both bounds


# ---------------------------------------------------------------------------
# Lint passes
# ---------------------------------------------------------------------------


class TestLintPasses:
    def test_shadowed_rule_detected(self):
        cover = Rule.build(0, 0, src="10.0.0.0/8", action=RuleAction.DROP)
        victim = Rule.build(1, 1, src="10.1.0.0/16", action=RuleAction.FORWARD)
        report = analyze_ruleset(_ruleset(cover, victim))
        (finding,) = report.findings
        assert finding.category == "shadowed"
        assert finding.rule_id == 1 and finding.related == (0,)

    def test_redundant_rule_detected(self):
        cover = Rule.build(0, 0, src="10.0.0.0/8")
        victim = Rule.build(1, 1, src="10.1.0.0/16")
        report = analyze_ruleset(_ruleset(cover, victim))
        (finding,) = report.findings
        assert finding.category == "redundant"
        assert finding.rule_id == 1 and finding.related == (0,)

    def test_conflict_detected_on_lower_priority_rule(self):
        upper = Rule.build(
            0, 0, src="10.0.0.0/8", dst_port="0:100", action=RuleAction.DROP
        )
        lower = Rule.build(
            1, 1, src="10.1.0.0/16", dst_port="50:200", action=RuleAction.FORWARD
        )
        report = analyze_ruleset(_ruleset(upper, lower))
        (finding,) = report.findings
        assert finding.category == "conflict"
        assert finding.rule_id == 1 and finding.related == (0,)

    def test_exception_pattern_is_not_a_conflict(self):
        # A narrow higher-priority exception inside a broad rule with a
        # different action is the intended composition idiom, not a defect.
        exception = Rule.build(0, 0, src="10.1.0.0/16", action=RuleAction.DROP)
        broad = Rule.build(1, 1, src="10.0.0.0/8", action=RuleAction.FORWARD)
        report = analyze_ruleset(_ruleset(exception, broad))
        assert report.findings == []

    def test_unreachable_union_cover_detected(self):
        left = Rule.build(0, 0, src="10.0.0.0/8", src_port="0:100")
        right = Rule.build(1, 1, src="10.0.0.0/8", src_port="101:65535")
        victim = Rule.build(
            2, 2, src="10.1.0.0/16", action=RuleAction.DROP
        )
        report = analyze_ruleset(_ruleset(left, right, victim))
        categories = {finding.category for finding in report.findings}
        assert "unreachable" in categories
        (finding,) = report.findings_by_category("unreachable")
        assert finding.rule_id == 2 and finding.related == (0, 1)

    def test_partial_union_is_reachable(self):
        left = Rule.build(0, 0, src="10.0.0.0/8", src_port="0:100")
        right = Rule.build(1, 1, src="10.0.0.0/8", src_port="102:65535")
        victim = Rule.build(2, 2, src="10.1.0.0/16")  # port 101 still reaches it
        report = analyze_ruleset(_ruleset(left, right, victim))
        assert report.findings_by_category("unreachable") == []

    def test_witness_budget_skips_instead_of_guessing(self):
        left = Rule.build(0, 0, src_port="0:100")
        right = Rule.build(1, 1, src_port="101:65535")
        victim = Rule.build(2, 2, dst="10.0.0.0/8")
        report = analyze_ruleset(_ruleset(left, right, victim), max_witnesses=1)
        assert report.findings_by_category("unreachable") == []
        assert report.unreachable_checks_skipped == 1

    def test_report_serialisation_schema(self):
        cover = Rule.build(0, 0, action=RuleAction.DROP)
        victim = Rule.build(1, 1, protocol=6)
        report = analyze_ruleset(_ruleset(cover, victim))
        payload = json.loads(report.to_json())
        assert set(payload) == {
            "ruleset", "rules", "counts", "findings", "coverage", "overlap",
            "unreachable_checks_skipped",
        }
        assert set(payload["counts"]) == set(LINT_CATEGORIES)
        assert payload["counts"]["shadowed"] == 1
        assert payload["findings"][0]["rule_id"] == 1
        assert set(payload["coverage"]) == {
            "wildcard_fraction", "space_coverage", "unique_field_counts",
        }
        text = report.render_text()
        assert "shadowed" in text and "Per-dimension coverage" in text

    def test_empty_ruleset_is_clean(self):
        report = analyze_ruleset(RuleSet(name="empty"))
        assert report.clean and report.rule_count == 0


# ---------------------------------------------------------------------------
# Fixtures + ClassBench action round-trip
# ---------------------------------------------------------------------------


class TestFixtures:
    def test_clean_fixture_has_zero_findings(self):
        clean = clean_ruleset(size=120, seed=5)
        assert len(clean) > 0
        assert analyze_ruleset(clean).clean

    def test_seeded_fixture_detects_every_planted_defect(self):
        clean = clean_ruleset(size=120, seed=5)
        seeded, manifest = seeded_ruleset(clean, seed=5, per_category=2)
        report = analyze_ruleset(seeded)
        for category, planted in manifest.items():
            assert len(planted) == 2
            found = {f.rule_id for f in report.findings_by_category(category)}
            assert set(planted) <= found

    def test_write_fixtures_round_trip(self, tmp_path):
        summary = write_fixtures(tmp_path, size=120, seed=5, per_category=2)
        clean = load_classbench_file(summary["clean"])
        assert analyze_ruleset(clean).clean
        seeded = load_classbench_file(summary["seeded"])
        manifest = json.loads((tmp_path / "seeded.manifest.json").read_text())
        report = analyze_ruleset(seeded)
        for category, planted in manifest.items():
            found = {f.rule_id for f in report.findings_by_category(category)}
            assert set(planted) <= found

    def test_action_token_round_trip(self):
        rule = Rule.build(0, 0, src="10.0.0.0/8", action=RuleAction.DROP)
        line = format_classbench(rule, include_action=True)
        assert line.endswith("action=drop")
        parsed = parse_classbench_line(line, rule_id=0, priority=0)
        assert parsed.action is RuleAction.DROP
        assert "extra" not in parsed.metadata
        # Plain format stays action-free and defaults to forward on parse.
        plain = format_classbench(rule)
        assert "action=" not in plain
        assert parse_classbench_line(plain, 0, 0).action is RuleAction.FORWARD

    def test_unknown_action_token_rejected(self):
        line = format_classbench(Rule.build(0, 0)) + "\taction=teleport"
        with pytest.raises(RuleSetError, match="unknown rule action"):
            parse_classbench_line(line, 0, 0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestLintCli:
    @pytest.fixture(scope="class")
    def fixture_files(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("lint-fixtures")
        return write_fixtures(outdir, size=120, seed=5, per_category=2)

    def test_clean_file_exits_zero(self, fixture_files, capsys):
        assert cli_main(["lint", "--rules", fixture_files["clean"]]) == 0
        out = capsys.readouterr().out
        assert "Findings            : 0" in out

    def test_seeded_file_exits_one_with_json_report(self, fixture_files, capsys):
        assert cli_main(["lint", "--rules", fixture_files["seeded"], "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        with open(fixture_files["manifest"]) as handle:
            manifest = json.load(handle)
        flagged = {f["rule_id"] for f in payload["findings"]}
        for planted in manifest.values():
            assert set(planted) <= flagged

    def test_fail_on_filters_exit_code(self, fixture_files, capsys):
        # The seeded set contains every category; failing only on a category
        # that is absent from a clean set keeps exit 0.
        assert (
            cli_main(["lint", "--rules", fixture_files["clean"], "--fail-on", "shadowed"])
            == 0
        )
        assert (
            cli_main(["lint", "--rules", fixture_files["seeded"], "--fail-on", "shadowed"])
            == 1
        )
        capsys.readouterr()

    def test_unknown_fail_on_category_is_an_error(self, fixture_files, capsys):
        code = cli_main(
            ["lint", "--rules", fixture_files["clean"], "--fail-on", "bogus"]
        )
        assert code == 2
        assert "unknown lint categories" in capsys.readouterr().err

    def test_lint_generated_workload(self, capsys):
        code = cli_main(["lint", "--size", "200", "--seed", "9", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] > 0
        assert code in (0, 1)

    def test_update_depth_experiment_registered(self):
        from repro.cli import EXPERIMENTS

        assert "update-depth" in EXPERIMENTS

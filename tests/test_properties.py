"""Property-based tests (hypothesis) for the core data structures and invariants.

These tests target the invariants the architecture's correctness rests on:

* prefix/range arithmetic round-trips and containment equivalences;
* the label-key pack/unpack bijection and hash determinism;
* label-list ordering (HPML-first) under arbitrary insertion orders;
* label-table counter semantics under arbitrary insert/remove interleavings;
* single-field engine agreement: the multi-bit trie and the binary search
  tree must return identical label sets for every lookup key;
* end-to-end classifier agreement with the linear-scan ground truth on
  randomly generated rule sets and packets;
* rule-filter membership after arbitrary insert/delete sequences;
* memory-image binary round-trips.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.controller.fabric import Topology, plan_placement
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm
from repro.fields.binary_search_tree import BinarySearchTree
from repro.fields.multibit_trie import MultibitTrie
from repro.fields.prefix import (
    Prefix,
    prefix_contains,
    prefix_range,
    range_to_prefixes,
    split_prefix_segments,
)
from repro.fields.range_utils import PORT_MAX, PortRange
from repro.hardware.hash_unit import HashUnit, LabelKeyLayout
from repro.hardware.memory_image import MemoryImage
from repro.hardware.rule_filter import RuleFilterMemory
from repro.labels.label_list import LabelList
from repro.labels.label_table import LabelTable
from repro.rules.packet import PacketHeader
from repro.rules.rule import ProtocolMatch, Rule
from repro.rules.ruleset import RuleSet

# -- strategies -----------------------------------------------------------------

ip_values = st.integers(min_value=0, max_value=(1 << 32) - 1)
segment_values = st.integers(min_value=0, max_value=(1 << 16) - 1)
port_values = st.integers(min_value=0, max_value=PORT_MAX)
prefix_lengths = st.integers(min_value=0, max_value=32)
segment_lengths = st.integers(min_value=0, max_value=16)


@st.composite
def prefixes32(draw):
    return Prefix(draw(ip_values), draw(prefix_lengths))


@st.composite
def segment_prefixes(draw):
    value = draw(segment_values)
    length = draw(segment_lengths)
    return (value & (((1 << length) - 1) << (16 - length) if length else 0), length)


@st.composite
def port_ranges(draw):
    low = draw(port_values)
    high = draw(st.integers(min_value=low, max_value=PORT_MAX))
    return PortRange(low, high)


@st.composite
def rules(draw, rule_id=0, priority=0):
    protocol = draw(st.sampled_from([None, 6, 17]))
    return Rule(
        rule_id=rule_id,
        priority=priority,
        src_prefix=draw(prefixes32()),
        dst_prefix=draw(prefixes32()),
        src_port=draw(port_ranges()),
        dst_port=draw(port_ranges()),
        protocol=ProtocolMatch.any() if protocol is None else ProtocolMatch.exact(protocol),
    )


@st.composite
def rulesets(draw, max_rules=12):
    count = draw(st.integers(min_value=1, max_value=max_rules))
    ruleset = RuleSet(name="hypothesis")
    for index in range(count):
        ruleset.add(draw(rules(rule_id=index, priority=index)))
    return ruleset


@st.composite
def packets(draw):
    return PacketHeader(
        src_ip=draw(ip_values),
        dst_ip=draw(ip_values),
        src_port=draw(port_values),
        dst_port=draw(port_values),
        protocol=draw(st.sampled_from([1, 6, 17, 47])),
    )


# -- prefix / range properties -----------------------------------------------------


class TestPrefixProperties:
    @given(prefixes32(), ip_values)
    def test_contains_equals_range_membership(self, prefix, point):
        low, high = prefix_range(prefix.value, prefix.length)
        assert prefix.contains(point) == (low <= point <= high)

    @given(port_values, port_values)
    def test_range_to_prefix_cover_is_exact(self, a, b):
        low, high = min(a, b), max(a, b)
        covered = set()
        for value, length in range_to_prefixes(low, high, width=16):
            plow, phigh = prefix_range(value, length, width=16)
            assert not (covered & set(range(plow, phigh + 1))), "prefixes must be disjoint"
            covered.update(range(plow, phigh + 1))
        assert covered == set(range(low, high + 1))

    @given(prefixes32(), ip_values)
    def test_segment_split_preserves_membership(self, prefix, point):
        segments = split_prefix_segments(prefix.value, prefix.length)
        point_segments = (point >> 16, point & 0xFFFF)
        segment_match = all(
            prefix_contains(value, length, part, width=16)
            for (value, length), part in zip(segments, point_segments)
        )
        assert segment_match == prefix.contains(point)

    @given(port_ranges(), port_values)
    def test_port_range_contains(self, port_range, value):
        assert port_range.contains(value) == (port_range.low <= value <= port_range.high)


# -- hash / label key properties -------------------------------------------------------


class TestLabelKeyProperties:
    layout = LabelKeyLayout()

    @given(
        st.tuples(
            st.integers(0, 8191), st.integers(0, 8191), st.integers(0, 8191), st.integers(0, 8191),
            st.integers(0, 127), st.integers(0, 127), st.integers(0, 3),
        )
    )
    def test_pack_unpack_round_trip(self, labels):
        assert self.layout.unpack(self.layout.pack(labels)) == labels

    @given(st.integers(min_value=0, max_value=(1 << 68) - 1))
    def test_hash_is_deterministic_and_in_range(self, key):
        unit = HashUnit(table_bits=12)
        slot = unit.hash(key)
        assert slot == unit.hash(key)
        assert 0 <= slot < unit.table_size


# -- label structures -------------------------------------------------------------------


class TestLabelStructureProperties:
    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)), max_size=40))
    def test_label_list_sorted_and_unique(self, entries):
        label_list = LabelList()
        best = {}
        for label, priority in entries:
            label_list.add(label, priority)
            best[label] = min(best.get(label, priority), priority)
        assert label_list.is_sorted()
        assert sorted(label_list.labels()) == sorted(best)
        if entries:
            assert label_list.first_priority() == min(best.values())

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60))
    def test_label_table_counters_balance(self, values):
        table = LabelTable("field", width_bits=3)
        live = {}
        for value in values:
            outcome = table.insert(value, priority=0)
            live[value] = live.get(value, 0) + 1
            assert outcome.counter == live[value]
        for value, count in live.items():
            assert table.counter_of(value) == count
        # remove everything; labels must disappear exactly at zero
        for value, count in live.items():
            for remaining in range(count - 1, -1, -1):
                outcome = table.remove(value)
                assert outcome.deleted == (remaining == 0)
        assert table.unique_values == 0


# -- engine equivalence --------------------------------------------------------------------


class TestEngineEquivalence:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(segment_prefixes(), min_size=1, max_size=20, unique=True), st.lists(segment_values, min_size=1, max_size=10))
    def test_mbt_and_bst_agree(self, prefix_list, lookups):
        mbt = MultibitTrie()
        bst = BinarySearchTree()
        for label, spec in enumerate(prefix_list):
            mbt.insert(spec, label, priority=label)
            bst.insert(spec, label, priority=label)
        for value in lookups:
            assert set(mbt.lookup(value).labels) == set(bst.lookup(value).labels)
            if mbt.lookup(value).matched:
                assert mbt.lookup(value).first_label == bst.lookup(value).first_label

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(segment_prefixes(), min_size=1, max_size=15, unique=True), segment_values)
    def test_engine_lookup_matches_naive_containment(self, prefix_list, value):
        mbt = MultibitTrie()
        for label, spec in enumerate(prefix_list):
            mbt.insert(spec, label, priority=label)
        expected = {
            label
            for label, (prefix_value, length) in enumerate(prefix_list)
            if prefix_contains(prefix_value, length, value, width=16)
        }
        assert set(mbt.lookup(value).labels) == expected


# -- rule filter properties ---------------------------------------------------------------------


class TestRuleFilterProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=30, unique=True), st.data())
    def test_membership_after_random_deletes(self, rule_ids, data):
        layout = LabelKeyLayout()
        memory = RuleFilterMemory(capacity=64)
        keys = {}
        for rule_id in rule_ids:
            key = layout.pack((rule_id % 8192, rule_id % 3, 0, 0, rule_id % 128, 0, rule_id % 4))
            keys[rule_id] = key
            memory.insert(key, Rule.build(rule_id, rule_id))
        to_delete = data.draw(st.lists(st.sampled_from(rule_ids), unique=True))
        for rule_id in to_delete:
            deleted, _ = memory.delete(keys[rule_id], rule_id)
            assert deleted
        surviving = set(rule_ids) - set(to_delete)
        for rule_id in rule_ids:
            entry = memory.lookup(keys[rule_id]).entry
            found = {e.rule_id for e in memory.entries() if e.label_key == keys[rule_id]}
            if rule_id in surviving:
                assert rule_id in found
            else:
                assert rule_id not in found
        assert memory.stored_rules == len(surviving)


# -- end-to-end classifier property ----------------------------------------------------------------


class TestClassifierProperties:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rulesets(), st.lists(packets(), min_size=1, max_size=8))
    def test_classifier_matches_linear_scan(self, ruleset, packet_list):
        classifier = ConfigurableClassifier.from_ruleset(ruleset)
        for packet in packet_list:
            expected = ruleset.highest_priority_match(packet)
            result = classifier.classify(packet)
            got = result.rule_id
            want = expected.rule_id if expected else None
            assert got == want

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rulesets(max_rules=8), st.lists(packets(), min_size=1, max_size=5))
    def test_bst_configuration_matches_linear_scan(self, ruleset, packet_list):
        classifier = ConfigurableClassifier.from_ruleset(
            ruleset, ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
        )
        for packet in packet_list:
            expected = ruleset.highest_priority_match(packet)
            result = classifier.classify(packet)
            got = result.rule_id
            want = expected.rule_id if expected else None
            assert got == want

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rulesets(max_rules=8), st.lists(packets(), min_size=1, max_size=5), st.data())
    def test_agreement_survives_random_deletion(self, ruleset, packet_list, data):
        classifier = ConfigurableClassifier.from_ruleset(ruleset)
        victims = data.draw(
            st.lists(st.sampled_from(ruleset.rule_ids()), unique=True, max_size=len(ruleset) - 1)
        )
        for rule_id in victims:
            classifier.remove_rule(rule_id)
        survivors = ruleset.filter(lambda rule: rule.rule_id not in set(victims))
        for packet in packet_list:
            expected = survivors.highest_priority_match(packet)
            result = classifier.classify(packet)
            got = result.rule_id
            want = expected.rule_id if expected else None
            assert got == want


# -- memory image round trip --------------------------------------------------------------------------


class TestMemoryImageProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["mbt_l1", "mbt_l2", "labels", "rule_filter"]),
                st.integers(0, 1 << 20),
                st.integers(0, (1 << 64) - 1),
            ),
            max_size=50,
        )
    )
    def test_binary_round_trip(self, records):
        image = MemoryImage("img")
        for block, address, word in records:
            image.add(block, address, word)
        decoded = MemoryImage.from_bytes(image.to_bytes())
        assert len(decoded) == len(image)
        for original, copy in zip(image.writes, decoded.writes):
            assert (original.block, original.address, original.data) == (
                copy.block,
                copy.address,
                copy.data,
            )


# -- rule overlap / dependency-index properties --------------------------------------


class TestRuleOverlapProperties:
    """Satellite audit of :meth:`Rule.overlaps` and its 5-dimension interval
    generalisation (:mod:`repro.analysis.depindex`): symmetry, soundness
    against shared-packet witnesses, and the edge cases of each match syntax
    (wildcard protocol, port-range boundaries, prefix nesting)."""

    @given(rules(rule_id=0, priority=0), rules(rule_id=1, priority=1))
    def test_overlaps_is_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps(a)

    @given(rules(rule_id=0, priority=0), rules(rule_id=1, priority=1), packets())
    def test_shared_match_implies_overlap(self, a, b, packet):
        if a.matches(packet) and b.matches(packet):
            assert a.overlaps(b)

    @given(rules(rule_id=0, priority=0), rules(rule_id=1, priority=1))
    def test_overlaps_equals_interval_intersection(self, a, b):
        from repro.analysis.depindex import rule_bounds

        bounds_a, bounds_b = rule_bounds(a), rule_bounds(b)
        boxes_intersect = all(
            bounds_a[2 * d] <= bounds_b[2 * d + 1] and bounds_b[2 * d] <= bounds_a[2 * d + 1]
            for d in range(5)
        )
        assert a.overlaps(b) == boxes_intersect

    @given(rulesets(max_rules=10))
    def test_dependency_index_matches_pairwise_oracle(self, ruleset):
        from repro.analysis.depindex import DependencyIndex

        index = DependencyIndex(ruleset.rules())
        for rule in ruleset:
            oracle = {
                other.rule_id
                for other in ruleset
                if other.rule_id != rule.rule_id and rule.overlaps(other)
            }
            assert set(index.overlapping(rule)) == oracle

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
    def test_protocol_wildcard_and_exact_edges(self, value, probe):
        wildcard = ProtocolMatch(value=value, wildcard=True)
        exact = ProtocolMatch.exact(value)
        assert wildcard.matches(probe)
        assert exact.matches(probe) == (probe == value)
        # Canonical key: every wildcard collapses to the same identity
        # regardless of the (ignored) value payload.
        assert wildcard.key() == ProtocolMatch.any().key()
        assert exact.key() == (False, value)

    @given(port_values, port_values)
    def test_port_boundary_overlap(self, a, b):
        low, high = min(a, b), max(a, b)
        window = PortRange(low, high)
        # A shared endpoint overlaps; the adjacent value does not.
        assert window.overlaps(PortRange.exact(high))
        assert window.overlaps(PortRange.exact(low))
        if high < PORT_MAX:
            assert not window.overlaps(PortRange(high + 1, PORT_MAX))
            assert window.overlaps(PortRange(high, PORT_MAX))
        if low > 0:
            assert not window.overlaps(PortRange(0, low - 1))
            assert window.overlaps(PortRange(0, low))

    @given(prefixes32())
    def test_prefix_nesting_overlap(self, prefix):
        if prefix.length == 32:
            assert prefix.overlaps(prefix)
            return
        child_length = prefix.length + 1
        left = Prefix(prefix.value, child_length)
        right = Prefix(prefix.value | (1 << (32 - child_length)), child_length)
        # Each half nests in (hence overlaps) the parent; the halves are
        # disjoint; together they cover the parent exactly.
        assert prefix.overlaps(left) and prefix.overlaps(right)
        assert not left.overlaps(right)
        assert (left.low, right.high) == (prefix.low, prefix.high)
        assert left.high + 1 == right.low


# -- fabric placement properties --------------------------------------------------


@st.composite
def topologies(draw):
    kind = draw(st.sampled_from(["line", "fattree"]))
    if kind == "line":
        return Topology.line(draw(st.integers(min_value=1, max_value=6)))
    return Topology.fattree(draw(st.integers(min_value=5, max_value=9)))


@pytest.mark.fabric
class TestFabricPlacementProperties:
    """The invariants the fabric's exactness proof rests on: every served
    path covers the whole program, overlapping rules are always co-located
    (same host switches, original priorities), and per-switch subsets are
    the original rules — never renumbered copies."""

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rulesets(), topologies())
    def test_every_path_union_covers_the_program(self, ruleset, topology):
        plan = plan_placement(tuple(ruleset.rules()), topology)
        everything = {rule.rule_id for rule in ruleset.rules()}
        for path in topology.served_paths():
            covered = set()
            for dpid in path.hops:
                covered.update(rule.rule_id for rule in plan.rules_for(dpid))
            assert covered == everything

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rulesets(), topologies(), st.lists(packets(), min_size=1, max_size=6))
    def test_best_match_along_any_path_is_exact(self, ruleset, topology, packet_list):
        """min-priority match over the per-hop subsets == global HPMR."""
        plan = plan_placement(tuple(ruleset.rules()), topology)
        for packet in packet_list:
            truth = ruleset.highest_priority_match(packet)
            for path in topology.served_paths():
                hits = [
                    rule
                    for dpid in path.hops
                    for rule in plan.rules_for(dpid)
                    if rule.matches(packet)
                ]
                best = min(hits, key=lambda r: (r.priority, r.rule_id), default=None)
                if truth is None:
                    assert best is None
                else:
                    assert best is not None
                    assert best.rule_id == truth.rule_id

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rulesets(), topologies())
    def test_overlapping_rules_are_colocated_priority_intact(self, ruleset, topology):
        """No switch ever holds one half of an overlap without the other,
        and no switch holds two overlapping rules with their relative
        priority inverted (subsets preserve the original priorities)."""
        rules_tuple = tuple(ruleset.rules())
        plan = plan_placement(rules_tuple, topology)
        for a in rules_tuple:
            for b in rules_tuple:
                if a.rule_id >= b.rule_id or not a.overlaps(b):
                    continue
                assert plan.switches_for_rule(a.rule_id) == plan.switches_for_rule(
                    b.rule_id
                )
        global_priority = {rule.rule_id: rule.priority for rule in rules_tuple}
        for subset in plan.switch_rules.values():
            for i, first in enumerate(subset):
                for second in subset[i + 1 :]:
                    if not first.overlaps(second):
                        continue
                    assert (first.priority < second.priority) == (
                        global_priority[first.rule_id]
                        < global_priority[second.rule_id]
                    )

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rulesets(), topologies())
    def test_subsets_are_the_original_rules(self, ruleset, topology):
        by_id = {rule.rule_id: rule for rule in ruleset.rules()}
        plan = plan_placement(tuple(ruleset.rules()), topology)
        placed_slots = 0
        for subset in plan.switch_rules.values():
            for rule in subset:
                assert rule == by_id[rule.rule_id]
                placed_slots += 1
        assert placed_slots == plan.total_rule_slots
        for rule_id in by_id:
            assert plan.switches_for_rule(rule_id)  # every rule is hosted somewhere

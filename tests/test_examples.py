"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; running them as subprocesses
(the way a user would) catches import errors, API drift and crashes.  The two
heavier examples are trimmed via environment-independent defaults, so the
whole module stays within a reasonable test-suite budget.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def _run(script_name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script_name)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )


def test_examples_directory_has_at_least_three_scripts():
    assert len(ALL_EXAMPLES) >= 3
    assert "quickstart.py" in ALL_EXAMPLES


def test_quickstart_runs_and_reports_throughput():
    result = _run("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Classifier report" in result.stdout
    assert "Gbps" in result.stdout


def test_incremental_update_example_runs():
    result = _run("incremental_update.py")
    assert result.returncode == 0, result.stderr
    assert "Incremental insertion" in result.stdout
    assert "ground-truth check" in result.stdout
    # every verification line reports full agreement
    for line in result.stdout.splitlines():
        if "ground-truth check" in line:
            counts = line.split(":")[1].strip().split(" ")[0]
            agreed, total = counts.split("/")
            assert agreed == total


@pytest.mark.slow
def test_sdn_service_chaining_example_runs():
    result = _run("sdn_service_chaining.py")
    assert result.returncode == 0, result.stderr
    assert "Per-device statistics" in result.stdout
    assert "BST" in result.stdout and "MBT" in result.stdout


@pytest.mark.slow
def test_algorithm_tradeoff_study_runs():
    result = _run("algorithm_tradeoff_study.py")
    assert result.returncode == 0, result.stderr
    assert "Controller IPalg_s decisions" in result.stdout

"""Tests for the ParallelSession backends (thread and process pools).

Covers the scale-out contracts of :mod:`repro.perf.parallel`: exact merged
statistics and bit-identical results from both backends, the constant-memory
bounded-chunk dispatch (the trace is never materialised), the
commit-on-success failure semantics (a poisoned packet corrupts nothing),
the picklable :class:`ReplicaSpec` worker recipe, and the
:class:`SessionStats.merge` edge cases (re-merging merged stats, mixed
latency parts, zero-packet parts).
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.api import ClassificationSession, SessionStats, create_classifier
from repro.core.result import BatchResult, Classification
from repro.exceptions import ConfigurationError
from repro.perf import ParallelSession, ReplicaSpec
from repro.rules.packet import PacketHeader
from repro.rules.trace import generate_trace


class PoisonedPacket(PacketHeader):
    """A header whose field segmentation explodes inside the classifier.

    Module level so the process backend can pickle it into a worker.
    """

    def ip_segments(self):
        raise RuntimeError("poisoned packet")


@pytest.fixture(scope="module")
def spec(small_acl_ruleset) -> ReplicaSpec:
    return ReplicaSpec("configurable", small_acl_ruleset, {"fast": True})


@pytest.fixture(scope="module")
def reference(small_acl_ruleset):
    """Single-classifier results + session stats over the shared trace."""
    trace = generate_trace(small_acl_ruleset, count=120, seed=77)
    classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
    batch = classifier.classify_batch(trace)
    stats = ClassificationSession(classifier, chunk_size=32).run(trace)
    truth = [
        match.rule_id if (match := small_acl_ruleset.highest_priority_match(p)) else None
        for p in trace
    ]
    return trace, batch, stats, truth


class TestReplicaSpec:
    def test_callable_and_picklable(self, spec, small_trace):
        replica = spec()
        assert replica.name == "configurable"
        assert replica.fast_path_enabled
        clone = pickle.loads(pickle.dumps(spec))
        assert list(clone().classify_batch(small_trace[:10]).results) == list(
            replica.classify_batch(small_trace[:10]).results
        )

    def test_vectorized_option(self, small_acl_ruleset, small_trace):
        replica = ReplicaSpec(
            "configurable", small_acl_ruleset, {"vectorized": True}
        )()
        assert replica._fast_path.vectorized
        baseline = create_classifier("configurable", small_acl_ruleset)
        assert list(replica.classify_batch(small_trace).results) == list(
            baseline.classify_batch(small_trace).results
        )


class TestProcessBackend:
    def test_merged_stats_and_results_match_single(self, spec, reference):
        trace, batch, single, truth = reference
        with ParallelSession.from_factory(
            spec, workers=2, chunk_size=32, backend="process"
        ) as pool:
            merged = pool.run(trace)
            assert merged.packets == single.packets
            assert merged.matched == single.matched
            assert merged.truncated_lookups == single.truncated_lookups
            assert merged.worst_memory_accesses == single.worst_memory_accesses
            assert merged.average_memory_accesses == pytest.approx(
                single.average_memory_accesses
            )
            assert merged.average_latency_cycles == pytest.approx(
                single.average_latency_cycles
            )
            assert merged.memory_bits == 2 * single.memory_bits
            assert merged.classifier == "configurablex2"
            # Bit-exact classifications, in input order, matching the linear
            # scan ground truth.
            fed = pool.feed(trace)
            assert list(fed.results) == list(batch.results)
            assert [result.rule_id for result in fed] == truth

    def test_generator_input_and_reset(self, spec, reference):
        trace, _, _, _ = reference
        with ParallelSession.from_factory(
            spec, workers=2, chunk_size=16, backend="process"
        ) as pool:
            stats = pool.run(packet for packet in trace)
            assert stats.packets == len(trace)
            pool.reset()
            assert pool.stats().packets == 0

    def test_poisoned_packet_leaves_counters_consistent(self, spec, reference):
        # Pinned to the pickle transport: the poison lives in a PacketHeader
        # *subclass* method, and only object pickling carries the subclass
        # into the worker — the packed transport re-encodes headers as plain
        # fixed-width value words (its abort semantics are covered by the
        # codec-failure test in tests/test_perf_transport.py).
        trace, _, _, _ = reference
        with ParallelSession.from_factory(
            spec, workers=2, chunk_size=16, backend="process", transport="pickle"
        ) as pool:
            before = pool.run(trace)
            poisoned = list(trace[:40]) + [
                PoisonedPacket(0x0A000001, 0x0A000002, 1, 2, 6)
            ] + list(trace[40:])
            with pytest.raises(RuntimeError, match="poisoned packet"):
                pool.run(poisoned)
            # The failed run contributed nothing: stats are exactly the
            # pre-failure commit, and the pool keeps working.
            assert pool.stats() == before
            again = pool.run(trace)
            assert again.packets == 2 * before.packets

    def test_requires_picklable_factory(self):
        with pytest.raises(ConfigurationError, match="picklable"):
            ParallelSession.from_factory(lambda: None, workers=2, backend="process")

    def test_rejects_replica_instances(self, small_acl_ruleset):
        replica = create_classifier("configurable", small_acl_ruleset)
        with pytest.raises(ConfigurationError, match="picklable factory"):
            ParallelSession([replica], backend="process")

    def test_replica_details_reported_from_worker(self, spec):
        with ParallelSession.from_factory(spec, workers=1, backend="process") as pool:
            details = pool.replica_details()
        assert details["fast_path"] is True
        assert "throughput_gbps" in details

    def test_close_idempotent(self, spec):
        pool = ParallelSession.from_factory(spec, workers=1, backend="process")
        pool.close()
        pool.close()


class TestThreadBackend:
    def test_feed_matches_single(self, spec, reference):
        trace, batch, _, _ = reference
        with ParallelSession.from_factory(spec, workers=3, chunk_size=16) as pool:
            fed = pool.feed(trace)
            assert list(fed.results) == list(batch.results)
            assert pool.replica_details()["fast_path"] is True

    def test_poisoned_packet_leaves_counters_consistent(self, spec, reference):
        trace, _, _, _ = reference
        with ParallelSession.from_factory(spec, workers=3, chunk_size=16) as pool:
            before = pool.run(trace)
            poisoned = [PoisonedPacket(1, 2, 3, 4, 5)] + list(trace)
            with pytest.raises(RuntimeError, match="poisoned packet"):
                pool.run(poisoned)
            assert pool.stats() == before

    def test_unknown_backend_rejected(self, spec):
        with pytest.raises(ConfigurationError, match="unknown parallel backend"):
            ParallelSession.from_factory(spec, workers=2, backend="gevent")

    def test_streaming_never_materialises_the_trace(self):
        """The dispatcher pulls at most the in-flight window ahead.

        With every replica blocked, dispatch must stall after the bounded
        chunk window — if the old list-materialising shard logic came back,
        the generator would be drained dry before any worker ran.
        """
        gate = threading.Event()

        class BlockingClassifier:
            name = "blocking"

            def classify_batch(self, chunk):
                gate.wait(timeout=30)
                return BatchResult(
                    tuple(
                        Classification(
                            rule_id=None, priority=None, action=None, memory_accesses=0
                        )
                        for _ in chunk
                    )
                )

            def memory_bits(self):
                return 0

        pulled = 0
        total = 5000

        def counting_trace():
            nonlocal pulled
            for _ in range(total):
                pulled += 1
                yield PacketHeader(1, 2, 3, 4, 5)

        pool = ParallelSession(
            [BlockingClassifier(), BlockingClassifier()], chunk_size=10
        )
        runner = threading.Thread(target=pool.run, args=(counting_trace(),))
        runner.start()
        try:
            deadline = time.monotonic() + 10
            # workers(2) x PIPELINE_DEPTH(2) chunks in flight + the chunk
            # whose dispatch is stalled = 50 packets pulled.
            while pulled < 50 and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.1)  # would keep pulling if the bound were broken
            assert pulled <= 60, f"dispatcher pulled {pulled} packets ahead"
        finally:
            gate.set()
            runner.join(timeout=30)
        assert not runner.is_alive()
        assert pool.stats().packets == total
        pool.close()


class TestSessionStatsMergeEdgeCases:
    def _stats(self, name="configurable", packets=10, latency=10.0, worst=12, **overrides):
        base = dict(
            classifier=name,
            packets=packets,
            matched=packets // 2,
            chunks=1,
            average_memory_accesses=4.0 if packets else 0.0,
            worst_memory_accesses=9 if packets else 0,
            average_latency_cycles=latency,
            worst_latency_cycles=worst,
            memory_bits=100,
            truncated_lookups=0,
        )
        base.update(overrides)
        return SessionStats(**base)

    def test_remerging_merged_stats_stacks_suffixes(self):
        merged = SessionStats.merge([self._stats(name="mbt_"), self._stats(name="mbt_")] * 2)
        assert merged.classifier == "mbt_x4"
        stacked = SessionStats.merge([merged, merged])
        # Re-merging a merged deployment records both fan-outs.
        assert stacked.classifier == "mbt_x4x2"
        assert stacked.packets == 2 * merged.packets
        assert stacked.memory_bits == 2 * merged.memory_bits

    def test_mixed_latency_parts_weight_only_modelled_packets(self):
        with_latency = self._stats(packets=10, latency=20.0, worst=30)
        without = self._stats(packets=90, latency=None, worst=None)
        merged = SessionStats.merge([with_latency, without])
        # The 90 latency-free packets must not dilute the average.
        assert merged.average_latency_cycles == pytest.approx(20.0)
        assert merged.worst_latency_cycles == 30
        assert merged.packets == 100

    def test_zero_packet_parts(self):
        empty = self._stats(packets=0, latency=None, worst=None, matched=0, chunks=0)
        merged = SessionStats.merge([empty, empty])
        assert merged.packets == 0
        assert merged.average_memory_accesses == 0.0
        assert merged.average_latency_cycles is None
        assert merged.hit_ratio == 0.0

    def test_zero_packet_part_does_not_skew_busy_part(self):
        busy = self._stats(packets=40)
        empty = self._stats(packets=0, latency=None, worst=None, matched=0, chunks=0)
        merged = SessionStats.merge([busy, empty])
        assert merged.average_memory_accesses == pytest.approx(4.0)
        assert merged.average_latency_cycles == pytest.approx(10.0)
        assert merged.classifier == "configurablex2"

"""Unit tests for the ConfigurableClassifier behavioural model."""

from __future__ import annotations

import pytest

from repro.core.classifier import ConfigurableClassifier, DISPATCH_CYCLES, FINAL_CYCLES, LABEL_FETCH_CYCLES
from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm
from repro.core.dimensions import DIMENSIONS


class TestClassifierConstruction:
    def test_default_engines(self):
        classifier = ConfigurableClassifier()
        assert set(classifier.engines) == set(DIMENSIONS)
        assert classifier.engines["src_ip_hi"].name.endswith("mbt")
        assert classifier.engines["protocol"].lookup_cycles == 1

    def test_bst_configuration_builds_bst_engines(self):
        classifier = ConfigurableClassifier(ClassifierConfig(ip_algorithm=IpAlgorithm.BST))
        assert classifier.engines["dst_ip_lo"].name.endswith("bst")
        assert not classifier.engines["dst_ip_lo"].pipelined

    def test_label_table_widths_follow_layout(self):
        classifier = ConfigurableClassifier()
        assert classifier.label_tables["src_ip_hi"].allocator.width_bits == 13
        assert classifier.label_tables["dst_port"].allocator.width_bits == 7
        assert classifier.label_tables["protocol"].allocator.width_bits == 2

    def test_shared_memory_selection_tracks_config(self):
        mbt = ConfigurableClassifier()
        bst = ConfigurableClassifier(ClassifierConfig(ip_algorithm=IpAlgorithm.BST))
        assert mbt.shared_memory.active_view == "mbt_level2"
        assert bst.shared_memory.active_view == "bst_nodes"

    def test_from_ruleset_installs_everything(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        assert classifier.installed_rules == len(handcrafted_ruleset)

    def test_repr(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        assert "mbt" in repr(classifier)


class TestLookup:
    def test_lookup_returns_hpmr(self, handcrafted_ruleset, web_packet, dns_packet, miss_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        assert classifier.classify(web_packet).rule_id == 0
        assert classifier.classify(dns_packet).rule_id == 2
        assert classifier.classify(miss_packet).rule_id == 4

    def test_lookup_miss_without_catch_all(self, handcrafted_ruleset, miss_packet):
        trimmed = handcrafted_ruleset.filter(lambda rule: rule.rule_id != 4)
        classifier = ConfigurableClassifier.from_ruleset(trimmed)
        result = classifier.classify(miss_packet)
        assert result.rule_id is None and not result.matched

    def test_lookup_reports_field_labels(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        result = classifier.classify(web_packet).detail
        assert set(result.field_labels) == set(DIMENSIONS)
        assert result.field_labels["protocol"]

    def test_lookup_cycle_report_phases(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        cycles = classifier.classify(web_packet).detail.cycles
        assert cycles.phases["dispatch"] == DISPATCH_CYCLES
        assert cycles.phases["label_fetch"] == LABEL_FETCH_CYCLES
        assert cycles.phases["rule_fetch"] == FINAL_CYCLES
        assert cycles.phases["field_lookup"] >= 6

    def test_lookup_memory_access_breakdown(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        result = classifier.classify(web_packet).detail
        assert set(result.memory_accesses) == set(DIMENSIONS) | {"rule_filter"}
        assert result.total_memory_accesses == sum(result.memory_accesses.values())

    def test_classify_batch(self, handcrafted_ruleset, web_packet, dns_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        results = classifier.classify_batch([web_packet, dns_packet])
        assert [result.rule_id for result in results] == [0, 2]
        assert results.packets == 2 and results.hit_ratio == 1.0

    def test_action_returned_with_match(self, handcrafted_ruleset, dns_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        assert classifier.classify(dns_packet).action == "redirect_group"


class TestConfigurability:
    def test_reconfigure_switches_algorithm_and_keeps_rules(
        self, handcrafted_ruleset, web_packet
    ):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        moved = classifier.reconfigure(IpAlgorithm.BST)
        assert moved == len(handcrafted_ruleset)
        assert classifier.config.ip_algorithm is IpAlgorithm.BST
        assert classifier.classify(web_packet).rule_id == 0

    def test_reconfigure_to_same_algorithm_is_noop(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        assert classifier.reconfigure(IpAlgorithm.MBT) == 0

    def test_reconfigure_round_trip_preserves_install_order(self, handcrafted_ruleset):
        """MBT -> BST -> MBT must rebuild a state identical to a fresh build.

        Label values depend on installation order, so the replay must follow
        the original (here deliberately non-sorted) install order; a replay
        sorted by rule id would assign different labels and different Rule
        Filter keys.
        """
        shuffled = [handcrafted_ruleset.get(rule_id) for rule_id in (4, 2, 0, 3, 1)]
        round_tripped = ConfigurableClassifier()
        fresh = ConfigurableClassifier()
        for rule in shuffled:
            round_tripped.install_rule(rule)
            fresh.install_rule(rule)
        round_tripped.reconfigure(IpAlgorithm.BST)
        round_tripped.reconfigure(IpAlgorithm.MBT)
        for dimension in DIMENSIONS:
            expected = [
                (value, entry.label, entry.counter, entry.best_priority)
                for value, entry in fresh.label_tables[dimension].entries()
            ]
            actual = [
                (value, entry.label, entry.counter, entry.best_priority)
                for value, entry in round_tripped.label_tables[dimension].entries()
            ]
            assert actual == expected, dimension
        assert {
            (entry.label_key, entry.rule_id) for entry in round_tripped.rule_filter.entries()
        } == {(entry.label_key, entry.rule_id) for entry in fresh.rule_filter.entries()}
        assert [
            rule.rule_id for rule in round_tripped.update_engine.installed_rules_in_order()
        ] == [4, 2, 0, 3, 1]

    def test_set_combiner_mode(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        classifier.set_combiner_mode(CombinerMode.FIRST_LABEL)
        assert classifier.combiner.mode is CombinerMode.FIRST_LABEL
        assert classifier.config.combiner_mode is CombinerMode.FIRST_LABEL

    def test_occupancy_and_latency(self):
        mbt = ConfigurableClassifier()
        bst = ConfigurableClassifier(ClassifierConfig(ip_algorithm=IpAlgorithm.BST))
        assert mbt.occupancy_cycles() == 1.0
        assert bst.occupancy_cycles() == 16.0
        assert mbt.lookup_latency_cycles() < bst.lookup_latency_cycles()

    def test_throughput_matches_paper(self):
        mbt = ConfigurableClassifier()
        bst = ConfigurableClassifier(ClassifierConfig(ip_algorithm=IpAlgorithm.BST))
        assert mbt.throughput_gbps() == pytest.approx(42.72, rel=0.01)
        assert bst.throughput_gbps() == pytest.approx(2.67, rel=0.01)

    def test_throughput_scales_with_packet_size(self):
        classifier = ConfigurableClassifier()
        assert classifier.throughput_gbps(100) > classifier.throughput_gbps(40)


class TestReporting:
    def test_memory_bits_used_grows_with_rules(self, handcrafted_ruleset):
        empty = ConfigurableClassifier()
        loaded = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        assert loaded.memory_bits_used()["rule_filter"] > empty.memory_bits_used()["rule_filter"]

    def test_provisioned_memory_bank_contents(self):
        bank = ConfigurableClassifier().provisioned_memory_bank()
        names = {block.name for block in bank}
        assert "src_ip_hi_mbt_l1" in names
        assert "rule_filter" in names
        assert "protocol_lut" in names
        # Table V scale: ~2.1 Mbit total.
        assert bank.total_bits == pytest.approx(2_097_184, rel=0.02)

    def test_provisioned_memory_bank_bst(self):
        bank = ConfigurableClassifier(ClassifierConfig(ip_algorithm=IpAlgorithm.BST)).provisioned_memory_bank()
        assert any(block.name.endswith("_bst") for block in bank)

    def test_report_structure(self, handcrafted_ruleset):
        report = ConfigurableClassifier.from_ruleset(handcrafted_ruleset).report()
        assert report.rules_installed == len(handcrafted_ruleset)
        assert report.rule_capacity == 8192
        assert report.memory_space_mbit == pytest.approx(2.1, rel=0.05)
        assert report.throughput_gbps == pytest.approx(42.72, rel=0.01)
        assert set(report.unique_labels) == set(DIMENSIONS)
        assert report.total_memory_bits_used > 0

    def test_report_capacity_in_bst_mode(self):
        report = ConfigurableClassifier(ClassifierConfig(ip_algorithm=IpAlgorithm.BST)).report()
        assert report.rule_capacity > 12000
        # provisioned memory is the same synthesised design in both modes
        assert report.memory_space_mbit == pytest.approx(2.1, rel=0.05)

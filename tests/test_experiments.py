"""Tests for the experiment drivers (small parameterisations for speed).

The benchmarks run the drivers at paper scale; here every driver is exercised
at a reduced scale to verify it runs, returns the documented structure and
renders without error.
"""

from __future__ import annotations

import pytest

from repro.core.config import IpAlgorithm
from repro.experiments import (
    fig3_pipeline,
    fig4_update,
    fig5_memory_sharing,
    lookup_latency,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    update_cost,
)
from repro.experiments.common import workload_ruleset, workload_trace
from repro.rules.classbench import FilterFlavor


class TestWorkloadHelpers:
    def test_ruleset_caching_returns_same_object(self):
        first = workload_ruleset(FilterFlavor.ACL, 300, seed=5)
        second = workload_ruleset(FilterFlavor.ACL, 300, seed=5)
        assert first is second

    def test_trace_cached_and_copied(self):
        first = workload_trace(FilterFlavor.ACL, 300, count=20, seed=5)
        second = workload_trace(FilterFlavor.ACL, 300, count=20, seed=5)
        assert first == second
        assert first is not second  # callers may mutate their copy


class TestTableDrivers:
    def test_table1_small(self):
        result = table1.run(nominal_size=300, trace_length=60)
        assert {row.algorithm for row in result.rows} == {"HyperCuts", "RFC", "DCFL", "Option1", "Option2"}
        assert all(row.measured_memory_accesses > 0 for row in result.rows)
        assert "Table I" in table1.render(result)

    def test_table2_small(self):
        result = table2.run(sizes=(300, 500))
        assert result.sizes == (300, 500)
        assert result.unique_count(300, "src_port") == 1
        assert all(0 <= value <= 1 for value in result.storage_reductions.values())
        assert "unique rule fields" in table2.render(result)
        with pytest.raises(KeyError):
            result.unique_count(999, "src_ip")

    def test_table3_small(self):
        result = table3.run(sizes=(300,))
        for flavor in FilterFlavor:
            assert result.count(flavor, 300) > 200
        assert "Table III" in table3.render(result)

    def test_table4(self):
        result = table4.run()
        assert result.matches_paper_order
        assert result.label_order == ("B", "C", "A")
        assert "Table IV" in table4.render(result)

    def test_table5(self):
        result = table5.run()
        assert result.estimate.fmax_mhz == pytest.approx(133.51, abs=1.0)
        assert 0.0 < result.memory_utilisation_percent < 10.0
        assert "Stratix V" in table5.render(result)

    def test_table6_small(self):
        result = table6.run(nominal_size=300, trace_length=40)
        mbt = result.row(IpAlgorithm.MBT)
        bst = result.row(IpAlgorithm.BST)
        assert mbt.occupancy_cycles_per_packet == 1
        assert bst.occupancy_cycles_per_packet == 16
        assert bst.stored_rule_capacity > mbt.stored_rule_capacity
        assert mbt.lookup_metrics.packets == 40
        assert "Table VI" in table6.render(result)
        with pytest.raises(KeyError):
            result.row("nonsense")

    def test_table7(self):
        result = table7.run()
        assert len(result.rows) == 4
        ours = result.row("Our system with MBT")
        assert ours.throughput_gbps == pytest.approx(42.73, rel=0.01)
        assert "quoted" in result.row("DCFLE").source
        assert "Table VII" in table7.render(result)


class TestFigureDrivers:
    def test_fig3(self):
        result = fig3_pipeline.run(packets=6)
        assert result.fully_pipelined
        assert result.single_packet_latency == 10
        rendered = fig3_pipeline.render(result)
        assert "pkt" in rendered and "Initiation interval" in rendered

    def test_fig4_small(self):
        result = fig4_update.run(nominal_size=300, delete_fraction=0.2)
        assert result.rules_inserted > 200
        assert result.rules_deleted == int(result.rules_inserted * 0.2)
        assert 0.0 <= result.counter_only_fraction("dst_port") <= 1.0
        assert "Fig. 4" in fig4_update.render(result)

    def test_fig5(self):
        result = fig5_memory_sharing.run()
        assert result.rule_capacities["bst"] > result.rule_capacities["mbt"]
        assert result.extra_rules_with_bst > 0
        assert "memory sharing" in fig5_memory_sharing.render(result)

    def test_update_cost_small(self):
        result = update_cost.run(nominal_size=300, delete_fraction=0.3)
        assert result.matches_paper_fixed_cost
        assert result.insert_metrics.operations > 200
        assert result.delete_metrics.operations > 0
        assert "update cost" in update_cost.render(result)

    def test_lookup_latency_small(self):
        result = lookup_latency.run(nominal_size=300, trace_length=30)
        assert result.row("mbt").configured_cycles == 6
        assert result.row("bst").configured_cycles == 16
        assert result.end_to_end_mbt_cycles < result.end_to_end_bst_cycles
        assert "per-field lookup latency" in lookup_latency.render(result)
        with pytest.raises(KeyError):
            result.row("tcam")

"""Shared scenario generator for the differential test battery.

Lives in its own module (not ``conftest.py``) so that
``tests/test_differential_scenarios.py`` can import it by name: pytest loads
both ``tests/conftest.py`` and ``benchmarks/conftest.py`` under the module
name ``conftest``, so ``from conftest import ...`` resolves to whichever one
happened to load first.  A uniquely-named helper module has no such clash.
"""

from __future__ import annotations

import os
import random
from typing import List, Tuple

from repro.controller.fabric import Topology
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet
from repro.rules.trace import (
    FabricPacket,
    generate_fabric_trace,
    generate_flow_churn_trace,
    generate_trace,
    generate_uniform_trace,
)

#: Battery seed — override with REPRO_DIFF_SEED to reproduce a CI failure
#: locally (the CI differential job echoes the seed it ran with).
DIFFERENTIAL_SEED = int(os.environ.get("REPRO_DIFF_SEED", "20140730"))

#: Trace shapes the battery sweeps: the biased ClassBench mix, an
#: adversarial all-unique-flows stream (every header distinct — worst case
#: for every memoization layer), and a heavy-duplicate stream (few flows
#: repeated — worst case for cache-correctness after the first packet), and a
#: Zipf-popularity flow-churn stream (skewed repeats with flow arrivals and
#: deaths — the flow-cache tier's reference workload).
TRACE_SHAPES: Tuple[str, ...] = ("mixed", "all_unique", "heavy_duplicate", "zipf_churn")


def build_scenario_trace(
    ruleset: RuleSet, shape: str, count: int, seed: int
) -> List[PacketHeader]:
    """Deterministically generate one trace of the requested shape."""
    if shape == "mixed":
        return generate_trace(ruleset, count=count, seed=seed)
    if shape == "all_unique":
        # Draw hit-biased headers, keep first occurrences only, and top up
        # from the uniform header space (always fresh) if the rule
        # hyper-rectangles are too small to yield enough distinct headers.
        seen = set()
        unique: List[PacketHeader] = []
        draw_seed = seed
        while len(unique) < count:
            biased = generate_trace(ruleset, count=2 * count, seed=draw_seed)
            for packet in biased + generate_uniform_trace(2 * count, seed=draw_seed + 1):
                if packet not in seen:
                    seen.add(packet)
                    unique.append(packet)
                    if len(unique) == count:
                        break
            draw_seed += 2
        return unique
    if shape == "heavy_duplicate":
        # A handful of distinct flows, re-played in random interleaving:
        # almost every packet after the warm-up is a cache hit.
        distinct = generate_trace(ruleset, count=max(4, count // 16), seed=seed)
        rng = random.Random(seed + 1)
        return [rng.choice(distinct) for _ in range(count)]
    if shape == "zipf_churn":
        # Skewed flow popularity with 5% per-packet churn: exercises every
        # flow-cache code path (hits, misses, evictions, dead flows).
        return generate_flow_churn_trace(
            ruleset,
            count=count,
            seed=seed,
            flows=max(8, count // 10),
            popularity="zipf",
            churn=0.05,
        )
    raise ValueError(f"unknown trace shape {shape!r}; choose from {TRACE_SHAPES}")


def build_fabric_topology(kind: str, switches: int) -> Topology:
    """One of the canonical fabric shapes the battery sweeps."""
    if kind == "line":
        return Topology.line(switches)
    if kind == "fattree":
        return Topology.fattree(switches)
    raise ValueError(f"unknown topology kind {kind!r}; choose 'line' or 'fattree'")


def build_fabric_trace(
    ruleset: RuleSet, topology: Topology, count: int, seed: int
) -> List[FabricPacket]:
    """Deterministic ingress-tagged trace over a fabric's ingress switches.

    Mirrors the ``zipf_churn`` single-switch shape — skewed flow popularity
    with 5% per-packet churn — so the fabric battery stresses the same
    flow dynamics the flow-cache battery does, with each flow pinned to one
    ingress switch for its lifetime.
    """
    return generate_fabric_trace(
        ruleset,
        topology.ingresses(),
        count,
        seed=seed,
        flows=max(8, count // 10),
        popularity="zipf",
        churn=0.05,
    )


def build_mutation_schedule(
    ruleset: RuleSet, boundaries: int, seed: int
) -> Tuple[List[Rule], List[List[Tuple[str, object]]]]:
    """Deterministic update schedule for the mutation-interleaved battery.

    Returns ``(initial_rules, schedule)``: the rules installed before any
    traffic flows, and one op-list per chunk boundary.  Each op is a plain
    ``(kind, payload)`` tuple — ``("insert", Rule)`` for a held-back rule,
    ``("remove", rule_id)`` for a currently installed one, or
    ``("reconfigure", "mbt"|"bst")`` toggling ``IPalg_s`` — so the same
    schedule replays identically against any execution path *and* against
    the linear-search oracle.  The schedule never removes the last rule and
    only inserts rules it held back, keeping every replay valid.
    """
    rng = random.Random(seed)
    ordered = ruleset.rules()
    holdback = max(2, len(ordered) // 4)
    initial = ordered[:-holdback]
    pending = list(ordered[-holdback:])
    installed = [rule.rule_id for rule in initial]
    algorithm = "mbt"
    schedule: List[List[Tuple[str, object]]] = []
    for _ in range(boundaries):
        ops: List[Tuple[str, object]] = []
        for _ in range(rng.randint(1, 2)):
            roll = rng.random()
            if roll < 0.45 and pending:
                rule = pending.pop(0)
                installed.append(rule.rule_id)
                ops.append(("insert", rule))
            elif roll < 0.85 and len(installed) > 1:
                victim = installed.pop(rng.randrange(len(installed)))
                ops.append(("remove", victim))
            else:
                algorithm = "bst" if algorithm == "mbt" else "mbt"
                ops.append(("reconfigure", algorithm))
        schedule.append(ops)
    return initial, schedule

"""Tests for the public API surface and the result dataclasses."""

from __future__ import annotations

import pytest

import repro
from repro.core.result import ClassifierReport, LookupResult, MatchedRule, UpdateResult
from repro.hardware.clock import CycleReport


class TestPackageExports:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "subpackage",
        ["api", "core", "fields", "labels", "hardware", "rules", "baselines", "controller", "analysis", "experiments", "perf"],
    )
    def test_subpackage_all_exports_resolve(self, subpackage):
        import importlib

        module = importlib.import_module(f"repro.{subpackage}")
        for name in module.__all__:
            assert hasattr(module, name), f"repro.{subpackage}.{name}"

    def test_top_level_quickstart_flow(self):
        rules = repro.generate_ruleset(nominal_size=200, seed=1)
        classifier = repro.ConfigurableClassifier.from_ruleset(rules)
        packet = repro.generate_trace(rules, count=1, seed=2)[0]
        result = classifier.classify(packet)
        assert isinstance(result, repro.Classification)
        assert isinstance(result.detail, repro.LookupResult)


class TestResultDataclasses:
    def _cycles(self, pipelined=True):
        report = CycleReport("lookup", pipelined=pipelined)
        report.add_phase("dispatch", 1)
        report.add_phase("field_lookup", 6)
        return report

    def test_lookup_result_properties(self):
        result = LookupResult(
            match=MatchedRule(rule_id=3, priority=1, action="forward"),
            field_labels={"protocol": ((0, 1),)},
            cycles=self._cycles(),
            memory_accesses={"protocol": 1, "rule_filter": 2},
            combiner_probes=1,
        )
        assert result.matched
        assert result.total_memory_accesses == 3
        assert result.latency_cycles == 7

    def test_lookup_result_miss(self):
        result = LookupResult(
            match=None,
            field_labels={},
            cycles=self._cycles(),
            memory_accesses={},
            combiner_probes=0,
        )
        assert not result.matched
        assert result.total_memory_accesses == 0

    def test_update_result_properties(self):
        result = UpdateResult(
            rule_id=9,
            operation="insert",
            labels={"protocol": (1, True), "src_port": (0, False)},
            structural_dimensions=("protocol",),
            cycles=self._cycles(pipelined=False),
            memory_accesses={"protocol": 2, "rule_filter": 2},
        )
        assert result.structural
        assert result.total_memory_accesses == 4

    def test_update_result_counter_only(self):
        result = UpdateResult(
            rule_id=9,
            operation="insert",
            labels={"protocol": (1, False)},
            structural_dimensions=(),
            cycles=self._cycles(),
            memory_accesses={"protocol": 1},
        )
        assert not result.structural

    def test_classifier_report_aggregates(self):
        report = ClassifierReport(
            ip_algorithm="mbt",
            combiner_mode="cross_product",
            rules_installed=10,
            rule_capacity=8192,
            unique_labels={"protocol": 3},
            memory_bits_used={"engines": 1000, "rule_filter": 960},
            memory_bits_provisioned={"engines": 543_000, "rule_filter": 786_432},
            lookup_latency_cycles=11,
            lookup_occupancy_cycles=1.0,
            throughput_gbps=42.7,
        )
        assert report.total_memory_bits_used == 1960
        assert report.total_memory_bits_provisioned == 543_000 + 786_432
        assert report.memory_space_mbit == pytest.approx(1.329, rel=0.01)

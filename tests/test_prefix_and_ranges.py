"""Unit tests for the prefix arithmetic and port-range helpers."""

from __future__ import annotations

import pytest

from repro.exceptions import RuleError
from repro.fields.prefix import (
    Prefix,
    format_ipv4,
    format_ipv4_prefix,
    parse_ipv4,
    parse_ipv4_prefix,
    prefix_contains,
    prefix_mask,
    prefix_overlaps,
    prefix_range,
    range_to_prefixes,
    split_prefix_segments,
)
from repro.fields.range_utils import PORT_MAX, PortRange, merge_ranges


class TestPrefixMask:
    def test_zero_length_is_empty_mask(self):
        assert prefix_mask(0) == 0

    def test_full_length_is_all_ones(self):
        assert prefix_mask(32) == 0xFFFFFFFF

    def test_byte_boundary(self):
        assert prefix_mask(8) == 0xFF000000

    def test_sixteen_bit_width(self):
        assert prefix_mask(4, width=16) == 0xF000

    def test_out_of_range_length_raises(self):
        with pytest.raises(RuleError):
            prefix_mask(33)

    def test_negative_length_raises(self):
        with pytest.raises(RuleError):
            prefix_mask(-1)


class TestPrefixRange:
    def test_slash24_range(self):
        low, high = prefix_range(parse_ipv4("192.168.1.0"), 24)
        assert low == parse_ipv4("192.168.1.0")
        assert high == parse_ipv4("192.168.1.255")

    def test_wildcard_covers_everything(self):
        low, high = prefix_range(0, 0)
        assert (low, high) == (0, 0xFFFFFFFF)

    def test_host_prefix_is_single_address(self):
        address = parse_ipv4("10.1.2.3")
        assert prefix_range(address, 32) == (address, address)

    def test_unaligned_value_is_masked(self):
        low, high = prefix_range(parse_ipv4("10.0.0.77"), 24)
        assert low == parse_ipv4("10.0.0.0")
        assert high == parse_ipv4("10.0.0.255")


class TestPrefixContainsAndOverlaps:
    def test_contains_inside(self):
        assert prefix_contains(parse_ipv4("10.0.0.0"), 8, parse_ipv4("10.200.1.1"))

    def test_contains_outside(self):
        assert not prefix_contains(parse_ipv4("10.0.0.0"), 8, parse_ipv4("11.0.0.1"))

    def test_nested_prefixes_overlap(self):
        assert prefix_overlaps(parse_ipv4("10.0.0.0"), 8, parse_ipv4("10.1.0.0"), 16)

    def test_disjoint_prefixes_do_not_overlap(self):
        assert not prefix_overlaps(parse_ipv4("10.0.0.0"), 8, parse_ipv4("11.0.0.0"), 8)

    def test_wildcard_overlaps_everything(self):
        assert prefix_overlaps(0, 0, parse_ipv4("203.0.113.7"), 32)


class TestRangeToPrefixes:
    def test_exact_value(self):
        assert range_to_prefixes(80, 80, width=16) == [(80, 16)]

    def test_full_range_is_single_wildcard(self):
        assert range_to_prefixes(0, PORT_MAX, width=16) == [(0, 0)]

    def test_aligned_power_of_two_block(self):
        assert range_to_prefixes(1024, 2047, width=16) == [(1024, 6)]

    def test_unaligned_range_decomposes_and_covers(self):
        prefixes = range_to_prefixes(7810, 7820, width=16)
        covered = set()
        for value, length in prefixes:
            low, high = prefix_range(value, length, width=16)
            covered.update(range(low, high + 1))
        assert covered == set(range(7810, 7821))

    def test_inverted_range_raises(self):
        with pytest.raises(RuleError):
            range_to_prefixes(10, 5, width=16)

    def test_out_of_space_raises(self):
        with pytest.raises(RuleError):
            range_to_prefixes(0, 1 << 16, width=16)


class TestSplitPrefixSegments:
    def test_short_prefix_leaves_low_segment_wild(self):
        high, low = split_prefix_segments(parse_ipv4("10.0.0.0"), 8)
        assert high == (0x0A00, 8)
        assert low == (0, 0)

    def test_long_prefix_pins_high_segment(self):
        high, low = split_prefix_segments(parse_ipv4("192.168.1.0"), 24)
        assert high == (0xC0A8, 16)
        assert low == (0x0100, 8)

    def test_host_prefix_pins_both_segments(self):
        high, low = split_prefix_segments(parse_ipv4("1.2.3.4"), 32)
        assert high == (0x0102, 16)
        assert low == (0x0304, 16)

    def test_wildcard_prefix(self):
        assert split_prefix_segments(0, 0) == [(0, 0), (0, 0)]

    def test_segments_reassemble_range(self):
        value, length = parse_ipv4("172.16.0.0"), 12
        (hi_value, hi_len), (lo_value, lo_len) = split_prefix_segments(value, length)
        hi_low, hi_high = prefix_range(hi_value, hi_len, 16)
        lo_low, lo_high = prefix_range(lo_value, lo_len, 16)
        full_low, full_high = prefix_range(value, length)
        assert (hi_low << 16) | lo_low == full_low
        assert (hi_high << 16) | lo_high == full_high


class TestIpv4Parsing:
    def test_round_trip(self):
        assert format_ipv4(parse_ipv4("203.0.113.9")) == "203.0.113.9"

    def test_prefix_round_trip(self):
        assert format_ipv4_prefix(*parse_ipv4_prefix("10.20.0.0/16")) == "10.20.0.0/16"

    def test_prefix_parse_masks_host_bits(self):
        value, length = parse_ipv4_prefix("10.20.30.40/16")
        assert format_ipv4(value) == "10.20.0.0"
        assert length == 16

    @pytest.mark.parametrize("text", ["1.2.3", "1.2.3.256", "a.b.c.d", "10.0.0.0", "10.0.0.0/33"])
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(RuleError):
            parse_ipv4_prefix(text)


class TestPrefixObject:
    def test_normalises_value(self):
        assert Prefix.parse("10.9.9.9/8").value == parse_ipv4("10.0.0.0")

    def test_low_high_and_contains(self):
        prefix = Prefix.parse("192.168.0.0/16")
        assert prefix.low == parse_ipv4("192.168.0.0")
        assert prefix.high == parse_ipv4("192.168.255.255")
        assert prefix.contains(parse_ipv4("192.168.44.1"))
        assert not prefix.contains(parse_ipv4("192.169.0.0"))

    def test_wildcard_flag(self):
        assert Prefix(0, 0).is_wildcard
        assert not Prefix.parse("1.0.0.0/8").is_wildcard

    def test_overlap_requires_same_width(self):
        with pytest.raises(RuleError):
            Prefix(0, 0).overlaps(Prefix(0, 0, width=16))

    def test_segments_helper(self):
        segments = Prefix.parse("10.1.0.0/16").segments()
        assert [segment.width for segment in segments] == [16, 16]
        assert segments[0].length == 16
        assert segments[1].length == 0

    def test_iter_addresses_guard(self):
        with pytest.raises(RuleError):
            Prefix.parse("10.0.0.0/8").iter_addresses(limit=10)

    def test_str_renders_cidr(self):
        assert str(Prefix.parse("10.0.0.0/8")) == "10.0.0.0/8"

    def test_bad_length_raises(self):
        with pytest.raises(RuleError):
            Prefix(0, 40)


class TestPortRange:
    def test_exact_constructor(self):
        assert PortRange.exact(80).is_exact

    def test_wildcard_constructor(self):
        assert PortRange.wildcard().is_wildcard

    def test_parse_colon_syntax(self):
        assert PortRange.parse("1024 : 2048") == PortRange(1024, 2048)

    def test_parse_single_value(self):
        assert PortRange.parse("443") == PortRange.exact(443)

    def test_parse_dash_syntax(self):
        assert PortRange.parse("20-21") == PortRange(20, 21)

    def test_inverted_range_raises(self):
        with pytest.raises(RuleError):
            PortRange(10, 5)

    def test_out_of_bounds_raises(self):
        with pytest.raises(RuleError):
            PortRange(0, PORT_MAX + 1)

    def test_contains_and_overlaps(self):
        service = PortRange(7810, 7820)
        assert service.contains(7812)
        assert not service.contains(7821)
        assert service.overlaps(PortRange.exact(7812))
        assert not service.overlaps(PortRange(8000, 9000))

    def test_covers(self):
        assert PortRange.wildcard().covers(PortRange.exact(7812))
        assert not PortRange.exact(7812).covers(PortRange.wildcard())

    def test_priority_key_orders_exact_then_tightest(self):
        # Table IV: for port 7812 the order must be B (exact), C (tight), A (wide).
        a = PortRange(0, 65355)
        b = PortRange.exact(7812)
        c = PortRange(7810, 7820)
        ordered = sorted([a, b, c], key=lambda r: r.priority_key())
        assert ordered == [b, c, a]

    def test_to_prefixes_cover_range(self):
        covered = set()
        for value, length in PortRange(1000, 1100).to_prefixes():
            low, high = prefix_range(value, length, 16)
            covered.update(range(low, high + 1))
        assert covered == set(range(1000, 1101))

    def test_span(self):
        assert PortRange(10, 19).span == 10
        assert PortRange.exact(5).span == 1


class TestMergeRanges:
    def test_merges_overlapping(self):
        merged = merge_ranges([PortRange(0, 10), PortRange(5, 20)])
        assert merged == [PortRange(0, 20)]

    def test_merges_adjacent(self):
        merged = merge_ranges([PortRange(0, 10), PortRange(11, 20)])
        assert merged == [PortRange(0, 20)]

    def test_keeps_disjoint(self):
        merged = merge_ranges([PortRange(0, 10), PortRange(20, 30)])
        assert merged == [PortRange(0, 10), PortRange(20, 30)]

    def test_empty_input(self):
        assert merge_ranges([]) == []

"""Unit tests for the clock model, the lookup pipeline and the FPGA resource model."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.hardware.clock import ClockModel, CycleReport, merge_reports
from repro.hardware.fpga_model import (
    DeviceBudget,
    FpgaResourceModel,
    LogicInventory,
    STRATIX_V_5SGXMB6R3F43C4,
)
from repro.hardware.memory import MemoryBank
from repro.hardware.pipeline import PAPER_PHASES, PipelineModel, PipelinePhase


class TestCycleReport:
    def test_phases_accumulate(self):
        report = CycleReport("lookup")
        report.add_phase("dispatch", 1)
        report.add_phase("field", 6)
        report.add_phase("field", 2)
        assert report.latency_cycles == 9
        assert report.phase_breakdown() == {"dispatch": 1, "field": 8}

    def test_occupancy_pipelined_vs_iterative(self):
        pipelined = CycleReport("lookup", pipelined=True)
        pipelined.add_phase("field", 6)
        iterative = CycleReport("lookup", pipelined=False)
        iterative.add_phase("field", 6)
        assert pipelined.occupancy_cycles == 1
        assert iterative.occupancy_cycles == 6

    def test_empty_report(self):
        assert CycleReport("noop").occupancy_cycles == 0

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            CycleReport("x").add_phase("p", -1)

    def test_merge_reports(self):
        a = CycleReport("a")
        a.add_phase("x", 2)
        b = CycleReport("b")
        b.add_phase("x", 3)
        b.add_phase("y", 1)
        merged = merge_reports("total", [a, b])
        assert merged.latency_cycles == 6
        assert merged.phases["x"] == 5


class TestClockModel:
    def test_default_frequency_is_table_v(self):
        assert ClockModel().frequency_hz == pytest.approx(133.51e6)

    def test_cycle_time(self):
        assert ClockModel(100e6).cycle_time_ns == pytest.approx(10.0)
        assert ClockModel(100e6).time_ns(5) == pytest.approx(50.0)

    def test_mbt_throughput_matches_table_vii(self):
        clock = ClockModel()
        assert clock.throughput_gbps(cycles_per_packet=1, packet_bytes=40) == pytest.approx(42.72, rel=0.01)

    def test_bst_throughput_matches_table_vii(self):
        clock = ClockModel()
        assert clock.throughput_gbps(cycles_per_packet=16, packet_bytes=40) == pytest.approx(2.67, rel=0.01)

    def test_conclusion_100byte_claim(self):
        # Conclusion: 133M lookups/s at 100-byte packets is over 100 Gbit/s.
        clock = ClockModel()
        assert clock.lookups_per_second(1) == pytest.approx(133.51e6)
        assert clock.throughput_gbps(1, packet_bytes=100) > 100

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            ClockModel(0)
        with pytest.raises(ConfigurationError):
            ClockModel().lookups_per_second(0)
        with pytest.raises(ConfigurationError):
            ClockModel().throughput_gbps(1, packet_bytes=0)

    def test_summarize(self):
        report = CycleReport("lookup", pipelined=True)
        report.add_phase("all", 10)
        summary = ClockModel().summarize({"lookup": report})
        assert summary["lookup"]["latency_cycles"] == 10
        assert summary["lookup"]["occupancy_cycles"] == 1
        assert summary["lookup"]["throughput_gbps"] == pytest.approx(42.72, rel=0.01)


class TestPipelineModel:
    def test_paper_phases_latency(self):
        model = PipelineModel(PAPER_PHASES)
        assert model.total_latency == 10
        assert model.initiation_interval == 1

    def test_fully_pipelined_one_packet_per_cycle(self):
        model = PipelineModel(PAPER_PHASES)
        assert model.throughput_cycles_per_packet(64) == pytest.approx(1.0, abs=0.05)

    def test_non_pipelined_phase_limits_rate(self):
        phases = (
            PipelinePhase("dispatch", 1),
            PipelinePhase("bst", 16, pipelined=False),
            PipelinePhase("final", 2),
        )
        model = PipelineModel(phases)
        assert model.initiation_interval == 16
        assert model.throughput_cycles_per_packet(64) == pytest.approx(16.0, rel=0.05)

    def test_trace_latencies(self):
        trace = PipelineModel(PAPER_PHASES).run(4)
        assert trace.packets == 4
        assert trace.timelines[0].latency_cycles == 10
        # back-to-back packets start one cycle apart
        assert trace.timelines[1].start_cycle - trace.timelines[0].start_cycle == 1
        assert trace.average_latency == pytest.approx(10.0)

    def test_empty_run(self):
        trace = PipelineModel(PAPER_PHASES).run(0)
        assert trace.packets == 0 and trace.total_cycles == 0

    def test_occupancy_diagram_renders(self):
        trace = PipelineModel(PAPER_PHASES).run(3)
        diagram = trace.occupancy_diagram()
        assert diagram.count("\n") == 2
        assert "D" in diagram and "R" in diagram

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            PipelineModel(())
        with pytest.raises(ConfigurationError):
            PipelineModel(PAPER_PHASES).run(-1)
        with pytest.raises(ConfigurationError):
            PipelinePhase("x", -1)


class TestFpgaResourceModel:
    def make_bank(self, bits: int = 2_000_000) -> MemoryBank:
        bank = MemoryBank("design")
        # Keep the block depth at the prototype's deepest (16K words) so the
        # Fmax derating path is not triggered by this synthetic design.
        bank.new_block("memory", depth=16384, width=max(1, bits // 16384))
        return bank

    def test_device_budget_constants(self):
        device = STRATIX_V_5SGXMB6R3F43C4
        assert device.block_memory_bits == 54_476_800
        assert device.alms == 225_400
        assert device.pins == 908

    def test_estimate_matches_paper_scale(self):
        model = FpgaResourceModel()
        estimate = model.estimate(self.make_bank(), LogicInventory(), target_fmax_mhz=133.51)
        assert abs(estimate.logic_alms - 79_835) / 79_835 < 0.10
        assert abs(estimate.registers - 129_273) / 129_273 < 0.10
        assert estimate.fmax_mhz == pytest.approx(133.51)
        assert estimate.pins_used == 500

    def test_utilisation_properties(self):
        estimate = FpgaResourceModel().estimate(self.make_bank())
        assert 0 < estimate.logic_utilisation < 1
        assert 0 < estimate.memory_utilisation < 1

    def test_as_table_row(self):
        row = FpgaResourceModel().estimate(self.make_bank()).as_table_row()
        assert "Logical Utilization" in row
        assert "MHz" in row["Maximum Frequency"]

    def test_memory_over_budget_rejected(self):
        big = MemoryBank("too_big")
        big.new_block("huge", depth=1_000_000, width=64)
        with pytest.raises(ConfigurationError):
            FpgaResourceModel().estimate(big)

    def test_logic_over_budget_rejected(self):
        inventory = LogicInventory(mbt_engines=100, bst_engines=100)
        with pytest.raises(ConfigurationError):
            FpgaResourceModel().estimate(self.make_bank(), inventory)

    def test_deep_memory_derates_fmax(self):
        deep = MemoryBank("deep")
        deep.new_block("huge", depth=1 << 18, width=8)
        estimate = FpgaResourceModel().estimate(deep, LogicInventory(), target_fmax_mhz=133.51)
        assert estimate.fmax_mhz < 133.51

    def test_small_device_budget(self):
        tiny = DeviceBudget("tiny", alms=1000, block_memory_bits=10_000, registers=1000, pins=10, base_fmax_mhz=50)
        with pytest.raises(ConfigurationError):
            FpgaResourceModel(tiny).estimate(self.make_bank())

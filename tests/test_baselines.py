"""Unit and correctness tests for the baseline classifiers."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BitVectorClassifier,
    DcflClassifier,
    EffiCutsClassifier,
    HyperCutsClassifier,
    LinearSearchClassifier,
    Option1Classifier,
    Option2Classifier,
    RfcClassifier,
    evaluate_baseline,
)
from repro.rules.ruleset import RuleSet
from repro.rules.rule import Rule
from repro.rules.trace import generate_trace, generate_uniform_trace

ALL_BASELINES = [
    HyperCutsClassifier,
    EffiCutsClassifier,
    RfcClassifier,
    DcflClassifier,
    BitVectorClassifier,
    Option1Classifier,
    Option2Classifier,
]


class TestLinearSearch:
    def test_returns_highest_priority_match(self, handcrafted_ruleset, web_packet):
        classifier = LinearSearchClassifier.create(handcrafted_ruleset)
        outcome = classifier.match_packet(web_packet)
        assert outcome.rule_id == 0
        assert outcome.matched

    def test_accesses_equal_rules_scanned(self, handcrafted_ruleset, web_packet, miss_packet):
        classifier = LinearSearchClassifier.create(handcrafted_ruleset)
        assert classifier.match_packet(web_packet).memory_accesses == 1
        assert classifier.match_packet(miss_packet).memory_accesses == len(handcrafted_ruleset)

    def test_miss_returns_none(self, handcrafted_ruleset, miss_packet):
        trimmed = handcrafted_ruleset.filter(lambda rule: rule.rule_id != 4)
        outcome = LinearSearchClassifier.create(trimmed).match_packet(miss_packet)
        assert outcome.rule is None and outcome.rule_id is None

    def test_memory_scales_with_rules(self, handcrafted_ruleset, small_acl_ruleset):
        small = LinearSearchClassifier.create(handcrafted_ruleset).memory_bits()
        large = LinearSearchClassifier.create(small_acl_ruleset).memory_bits()
        assert large > small
        assert LinearSearchClassifier.create(handcrafted_ruleset).memory_megabits() == small / 1e6

    def test_describe(self, handcrafted_ruleset):
        info = LinearSearchClassifier.create(handcrafted_ruleset).describe()
        assert info["algorithm"] == "LinearSearch"
        assert info["rules"] == len(handcrafted_ruleset)


@pytest.mark.parametrize("baseline_type", ALL_BASELINES)
class TestBaselineCorrectness:
    def test_agrees_with_linear_search_on_acl(self, baseline_type, small_acl_ruleset, small_trace):
        reference = LinearSearchClassifier.create(small_acl_ruleset)
        classifier = baseline_type.create(small_acl_ruleset)
        for packet in small_trace[:80]:
            assert classifier.match_packet(packet).rule_id == reference.match_packet(packet).rule_id

    def test_agrees_with_linear_search_on_fw(self, baseline_type, small_fw_ruleset):
        reference = LinearSearchClassifier.create(small_fw_ruleset)
        classifier = baseline_type.create(small_fw_ruleset)
        trace = generate_trace(small_fw_ruleset, count=60, seed=21)
        for packet in trace:
            assert classifier.match_packet(packet).rule_id == reference.match_packet(packet).rule_id

    def test_handles_uniform_traffic(self, baseline_type, small_acl_ruleset):
        reference = LinearSearchClassifier.create(small_acl_ruleset)
        classifier = baseline_type.create(small_acl_ruleset)
        for packet in generate_uniform_trace(40, seed=22):
            assert classifier.match_packet(packet).rule_id == reference.match_packet(packet).rule_id

    def test_handcrafted_overlaps(self, baseline_type, handcrafted_ruleset, web_packet, dns_packet, miss_packet):
        classifier = baseline_type.create(handcrafted_ruleset)
        assert classifier.match_packet(web_packet).rule_id == 0
        assert classifier.match_packet(dns_packet).rule_id == 2
        assert classifier.match_packet(miss_packet).rule_id == 4

    def test_reports_positive_memory_and_accesses(self, baseline_type, small_acl_ruleset, small_trace):
        classifier = baseline_type.create(small_acl_ruleset)
        evaluation = evaluate_baseline(classifier, small_trace[:40])
        assert evaluation.average_memory_accesses > 0
        assert evaluation.memory_megabits > 0
        assert evaluation.worst_memory_accesses >= evaluation.average_memory_accesses
        assert 0 <= evaluation.hit_ratio <= 1


class TestHyperCutsStructure:
    def test_tree_respects_binth(self, small_acl_ruleset):
        classifier = HyperCutsClassifier.create(small_acl_ruleset, binth=8)
        for node in classifier._iter_nodes():
            if node.is_leaf:
                assert len(node.rules) <= max(8, 1) or classifier.tree_depth() >= 32

    def test_more_cuts_reduce_leaf_scans(self, small_acl_ruleset, small_trace):
        shallow = HyperCutsClassifier.create(small_acl_ruleset, binth=64)
        deep = HyperCutsClassifier.create(small_acl_ruleset, binth=4)
        shallow_eval = evaluate_baseline(shallow, small_trace[:40])
        deep_eval = evaluate_baseline(deep, small_trace[:40])
        assert deep.node_count >= shallow.node_count
        assert deep_eval.average_memory_accesses <= shallow_eval.average_memory_accesses * 1.5

    def test_tree_depth_positive(self, small_acl_ruleset):
        assert HyperCutsClassifier.create(small_acl_ruleset).tree_depth() >= 1

    def test_single_rule_ruleset(self):
        ruleset = RuleSet([Rule.build(0, 0, src="10.0.0.0/8")], name="one")
        classifier = HyperCutsClassifier.create(ruleset)
        assert classifier.root.is_leaf


class TestEffiCutsStructure:
    def test_partitions_by_largeness(self, small_fw_ruleset):
        classifier = EffiCutsClassifier.create(small_fw_ruleset)
        assert classifier.partition_count > 1

    def test_replication_factor_not_worse_than_hypercuts(self, small_fw_ruleset):
        efficuts = EffiCutsClassifier.create(small_fw_ruleset)
        hypercuts = HyperCutsClassifier.create(small_fw_ruleset)
        efficuts_pointers = sum(tree.rule_pointer_count for tree in efficuts._trees)
        assert efficuts_pointers <= hypercuts.rule_pointer_count * 1.2

    def test_memory_not_worse_than_hypercuts(self, small_fw_ruleset):
        assert (
            EffiCutsClassifier.create(small_fw_ruleset).memory_bits()
            <= HyperCutsClassifier.create(small_fw_ruleset).memory_bits() * 1.5
        )


class TestRfcStructure:
    def test_equivalence_classes_bounded_by_rules(self, small_acl_ruleset):
        classifier = RfcClassifier.create(small_acl_ruleset)
        counts = classifier.equivalence_class_counts()
        for name, count in counts.items():
            assert count >= 1, name
        assert counts["src_port"] <= 2
        assert counts["protocol"] <= 4

    def test_memory_dominates_other_baselines(self, small_acl_ruleset):
        rfc = RfcClassifier.create(small_acl_ruleset).memory_bits()
        dcfl = DcflClassifier.create(small_acl_ruleset).memory_bits()
        assert rfc > dcfl

    def test_constant_lookup_accesses(self, small_acl_ruleset, small_trace):
        classifier = RfcClassifier.create(small_acl_ruleset)
        accesses = {classifier.match_packet(packet).memory_accesses for packet in small_trace[:30]}
        assert accesses == {14}  # 7 chunks + 3 + 2 + 1 phases + 1 rule read


class TestDcflStructure:
    def test_aggregation_sizes_bounded_by_rules(self, small_acl_ruleset):
        classifier = DcflClassifier.create(small_acl_ruleset)
        for size in classifier.aggregation_sizes():
            assert size <= len(small_acl_ruleset)

    def test_label_counts_match_unique_fields(self, small_acl_ruleset):
        classifier = DcflClassifier.create(small_acl_ruleset)
        assert len(classifier._labellers["src_ip"].labels) == small_acl_ruleset.unique_field_values("src_ip")
        assert len(classifier._labellers["protocol"].labels) == small_acl_ruleset.unique_field_values("protocol")


class TestBitVectorStructure:
    def test_accesses_grow_with_ruleset_size(self, handcrafted_ruleset, small_acl_ruleset, web_packet):
        small = BitVectorClassifier.create(handcrafted_ruleset).match_packet(web_packet).memory_accesses
        packet = generate_trace(small_acl_ruleset, count=1, seed=1)[0]
        large = BitVectorClassifier.create(small_acl_ruleset).match_packet(packet).memory_accesses
        assert large > small


class TestOptionCombinations:
    def test_option1_and_option2_use_different_engines(self, handcrafted_ruleset):
        option1 = Option1Classifier.create(handcrafted_ruleset)
        option2 = Option2Classifier.create(handcrafted_ruleset)
        assert option1.engines["src_ip"].levels == 5
        assert option2.engines["src_ip"].levels == 4

    def test_missing_engine_factory_rejected(self, handcrafted_ruleset):
        from repro.baselines.options import SingleFieldCombinationClassifier

        with pytest.raises(ValueError):
            SingleFieldCombinationClassifier(handcrafted_ruleset, {"src_ip": lambda: None})

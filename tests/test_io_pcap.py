"""Tests for the streaming pcap front-end (``repro.io.pcap``).

The golden-bytes tests pin the checked-in captures under ``tests/data/`` to
their generator recipe (``tests/pcap_fixtures.py``): regenerating each
fixture in memory must reproduce the checked-in file byte-for-byte, and
parsing it must yield the expected 5-tuples and frame accounting.  The
round-trip tests close the loop with the writer across every format variant,
and the allocation guard proves the packed read path never materialises a
``PacketHeader``.
"""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import TraceIOError
from repro.io.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    PORT_PROTOCOLS,
    PcapStats,
    read_pcap,
    read_pcap_packed,
    scan_pcap,
    write_pcap,
)
from repro.perf.transport import HEADER_BYTES, pack_headers, unpack_headers
from repro.rules.classbench import FilterFlavor, generate_ruleset
from repro.rules.packet import PacketHeader
from repro.rules.trace import generate_trace

from pcap_fixtures import (
    DATA_DIR,
    FIXTURES,
    GOLDEN_TRANSPORT,
    GOLDEN_TUPLES,
    MIXED_EXPECTED,
    MIXED_SKIPPED,
    MIXED_TRUNCATED,
)


class TestGoldenFixtures:
    @pytest.mark.parametrize("name", sorted(FIXTURES))
    def test_checked_in_bytes_match_generator(self, name):
        """The fixture files are exactly what their recipe produces."""
        checked_in = (DATA_DIR / name).read_bytes()
        assert checked_in == FIXTURES[name](), (
            f"{name} drifted from its recipe in tests/pcap_fixtures.py; "
            "regenerate with `python tests/pcap_fixtures.py`"
        )

    @pytest.mark.parametrize(
        "name", ["golden_le_micro.pcap", "golden_be_nano.pcap"]
    )
    def test_golden_word_mode_parses_exact_tuples(self, name):
        stats = PcapStats()
        got = list(scan_pcap(str(DATA_DIR / name), ports="word", stats=stats))
        assert got == GOLDEN_TUPLES
        assert (stats.packets, stats.skipped, stats.truncated) == (6, 0, 0)
        assert stats.frames == 6

    def test_golden_transport_mode_zeroes_portless_protocols(self):
        got = list(
            scan_pcap(str(DATA_DIR / "golden_le_micro.pcap"), ports="transport")
        )
        assert got == GOLDEN_TRANSPORT
        # The two readings differ exactly on the non-port protocols.
        for word, transport in zip(GOLDEN_TUPLES, got):
            if word[4] in PORT_PROTOCOLS:
                assert transport == word
            else:
                assert transport[2] == transport[3] == 0

    def test_mixed_capture_counts_skips_and_truncations(self):
        stats = PcapStats()
        got = list(
            scan_pcap(str(DATA_DIR / "mixed_nonip.pcap"), ports="word", stats=stats)
        )
        assert got == MIXED_EXPECTED
        assert stats.skipped == MIXED_SKIPPED
        assert stats.truncated == MIXED_TRUNCATED
        assert stats.frames == len(MIXED_EXPECTED) + MIXED_SKIPPED + MIXED_TRUNCATED

    def test_torn_tail_ends_scan_gracefully(self):
        stats = PcapStats()
        got = list(
            scan_pcap(str(DATA_DIR / "truncated_tail.pcap"), ports="word", stats=stats)
        )
        assert got == GOLDEN_TUPLES[:-1]
        assert stats.truncated == 1

    def test_read_pcap_materialises_headers(self):
        headers = read_pcap(str(DATA_DIR / "golden_le_micro.pcap"), ports="word")
        assert headers == [PacketHeader(*t) for t in GOLDEN_TUPLES]


class TestRoundTrip:
    @pytest.mark.parametrize("byte_order", ["little", "big"])
    @pytest.mark.parametrize("nanosecond", [False, True])
    @pytest.mark.parametrize("linktype", [LINKTYPE_ETHERNET, LINKTYPE_RAW_IP])
    def test_synthetic_trace_roundtrips_bit_exact(
        self, tmp_path, byte_order, nanosecond, linktype
    ):
        """write -> word-mode read is the identity on every format variant."""
        ruleset = generate_ruleset(FilterFlavor.ACL, 80, seed=5)
        trace = generate_trace(ruleset, count=150, seed=6)
        path = tmp_path / "trace.pcap"
        written = write_pcap(
            str(path), trace, linktype=linktype,
            byte_order=byte_order, nanosecond=nanosecond, seed=9,
        )
        assert written == len(trace)
        stats = PcapStats()
        assert read_pcap(str(path), ports="word", stats=stats) == trace
        assert (stats.packets, stats.skipped, stats.truncated) == (len(trace), 0, 0)

    def test_writer_is_deterministic_given_seed(self, tmp_path):
        a, b, c = (tmp_path / name for name in ("a.pcap", "b.pcap", "c.pcap"))
        write_pcap(str(a), GOLDEN_TUPLES, seed=3)
        write_pcap(str(b), GOLDEN_TUPLES, seed=3)
        write_pcap(str(c), GOLDEN_TUPLES, seed=4)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes() != c.read_bytes()

    def test_writer_accepts_headers_and_tuples_alike(self, tmp_path):
        mixed = [PacketHeader(*GOLDEN_TUPLES[0]), GOLDEN_TUPLES[1]]
        path = tmp_path / "mixed.pcap"
        write_pcap(str(path), mixed, seed=0)
        assert list(scan_pcap(str(path), ports="word")) == GOLDEN_TUPLES[:2]


class TestPackedPath:
    def test_packed_chunks_equal_codec_output(self, tmp_path):
        path = tmp_path / "trace.pcap"
        write_pcap(str(path), GOLDEN_TUPLES, seed=1)
        chunks = list(read_pcap_packed(str(path), chunk_size=4, ports="word"))
        assert [chunk.count for chunk in chunks] == [4, 2]
        data = b"".join(chunk.data for chunk in chunks)
        assert data == pack_headers([PacketHeader(*t) for t in GOLDEN_TUPLES])
        assert unpack_headers(data, 6) == [PacketHeader(*t) for t in GOLDEN_TUPLES]

    def test_packed_read_path_allocates_no_packet_headers(
        self, tmp_path, monkeypatch
    ):
        """10K-packet acceptance: zero PacketHeader allocations while reading."""
        ruleset = generate_ruleset(FilterFlavor.ACL, 100, seed=11)
        trace = generate_trace(ruleset, count=10_000, seed=12)
        expected = pack_headers(trace)
        path = tmp_path / "big.pcap"
        write_pcap(str(path), trace, seed=13)

        def poisoned(self):
            raise AssertionError("PacketHeader allocated on the packed read path")

        monkeypatch.setattr(PacketHeader, "__post_init__", poisoned)
        stats = PcapStats()
        chunks = list(
            read_pcap_packed(str(path), chunk_size=256, ports="word", stats=stats)
        )
        monkeypatch.undo()
        assert stats.packets == 10_000
        assert sum(chunk.count for chunk in chunks) == 10_000
        assert b"".join(chunk.data for chunk in chunks) == expected
        assert all(len(c.data) == c.count * HEADER_BYTES for c in chunks)


class TestErrorPaths:
    def test_missing_file_is_a_trace_error(self, tmp_path):
        with pytest.raises(TraceIOError, match="no-such"):
            list(scan_pcap(str(tmp_path / "no-such.pcap")))

    def test_unknown_magic_rejected_with_offset(self, tmp_path):
        path = tmp_path / "not.pcap"
        path.write_bytes(b"\x0a\x0d\x0d\x0a" + b"\x00" * 20)  # pcapng magic
        with pytest.raises(TraceIOError, match="offset 0.*pcapng"):
            list(scan_pcap(str(path)))

    def test_short_global_header_rejected(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(struct.pack("<I", 0xA1B2C3D4) + b"\x00" * 5)
        with pytest.raises(TraceIOError, match="truncated pcap global header"):
            list(scan_pcap(str(path)))

    def test_unsupported_linktype_rejected(self, tmp_path):
        path = tmp_path / "wifi.pcap"
        path.write_bytes(
            struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 105)
        )
        with pytest.raises(TraceIOError, match="linktype 105"):
            list(scan_pcap(str(path)))

    def test_unknown_port_mode_rejected(self):
        with pytest.raises(TraceIOError, match="port mode"):
            list(scan_pcap(str(DATA_DIR / "golden_le_micro.pcap"), ports="l4"))

    def test_writer_rejects_bad_parameters(self, tmp_path):
        path = str(tmp_path / "out.pcap")
        with pytest.raises(TraceIOError, match="linktype"):
            write_pcap(path, [], linktype=105)
        with pytest.raises(TraceIOError, match="byte_order"):
            write_pcap(path, [], byte_order="middle")

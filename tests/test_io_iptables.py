"""Tests for iptables-save import/export (``repro.io.iptables``).

Covers precise line-numbered rejection of the unsupported surface, multiport
expansion semantics (including the open-ended range forms), hypothesis
round-trip properties with exact port-range boundaries, and the acceptance
oracle: an exported-then-reimported ClassBench ACL ruleset must classify
every realizable packet identically to the original, rule-for-rule.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TraceIOError
from repro.io.iptables import (
    dump_iptables_file,
    format_iptables_save,
    load_iptables_file,
    parse_iptables_save,
)
from repro.io.pcap import PORT_PROTOCOLS
from repro.rules.classbench import FilterFlavor, generate_ruleset
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule, RuleAction
from repro.rules.ruleset import RuleSet
from repro.rules.trace import generate_trace


def _parse(text: str) -> RuleSet:
    return parse_iptables_save(text.strip().splitlines())


class TestImport:
    def test_basic_fields(self):
        ruleset = _parse(
            """
            *filter
            :FORWARD ACCEPT [0:0]
            -A FORWARD -s 10.0.0.0/8 -d 192.168.1.0/24 -p tcp --dport 80 -j ACCEPT
            -A FORWARD -p udp --sport 53 -j DROP
            -A FORWARD -j DROP
            COMMIT
            """
        )
        rules = ruleset.rules()
        assert len(rules) == 3
        first = rules[0]
        assert (first.src_prefix.value >> 24, first.src_prefix.length) == (10, 8)
        assert first.dst_prefix.length == 24
        assert (first.dst_port.low, first.dst_port.high) == (80, 80)
        assert first.src_port.is_wildcard
        assert first.protocol.value == 6
        assert first.action is RuleAction.FORWARD
        assert first.metadata["iptables_line"] == "3"
        assert rules[1].action is RuleAction.DROP
        assert (rules[1].src_port.low, rules[1].src_port.high) == (53, 53)
        # Priorities follow file order: earlier lines win.
        assert [rule.priority for rule in rules] == [0, 1, 2]

    def test_host_address_gets_a_32_prefix(self):
        rule = _parse("-A FORWARD -s 10.1.2.3 -j DROP").rules()[0]
        assert rule.src_prefix.length == 32

    @pytest.mark.parametrize(
        "token,low,high",
        [("80", 80, 80), ("80:90", 80, 90), (":90", 0, 90), ("80:", 80, 65535)],
    )
    def test_port_range_forms(self, token, low, high):
        """The open-ended ``:hi`` / ``lo:`` forms normalise exactly."""
        rule = _parse(f"-A FORWARD -p tcp --dport {token} -j ACCEPT").rules()[0]
        assert (rule.dst_port.low, rule.dst_port.high) == (low, high)

    def test_multiport_cross_product_expansion(self):
        ruleset = _parse(
            "-A FORWARD -p tcp -m multiport --sports 10,20:30 "
            "-m multiport --dports 80,443 -j DROP"
        )
        rules = ruleset.rules()
        assert [
            ((r.src_port.low, r.src_port.high), (r.dst_port.low, r.dst_port.high))
            for r in rules
        ] == [
            ((10, 10), (80, 80)),
            ((10, 10), (443, 443)),
            ((20, 30), (80, 80)),
            ((20, 30), (443, 443)),
        ]
        # Expanded rules renumber sequentially (unique id and priority).
        assert [r.rule_id for r in rules] == [0, 1, 2, 3]
        assert {r.metadata["iptables_line"] for r in rules} == {"1"}

    def test_action_mapping(self):
        ruleset = _parse(
            """
            -A FORWARD -j ACCEPT
            -A FORWARD -j DROP
            -A FORWARD -j REJECT --reject-with icmp-port-unreachable
            -A FORWARD -j MARK --set-xmark 0x1/0xffffffff
            -A FORWARD -j NFQUEUE --queue-num 0
            -A FORWARD -j REPRO-REDIRECT
            """
        )
        assert [rule.action for rule in ruleset.rules()] == [
            RuleAction.FORWARD,
            RuleAction.DROP,
            RuleAction.DROP,
            RuleAction.MODIFY,
            RuleAction.SEND_TO_CONTROLLER,
            RuleAction.REDIRECT_GROUP,
        ]

    def test_rid_comment_restores_source_rule_id(self):
        rule = _parse(
            '-A FORWARD -m comment --comment "rid:42" -j ACCEPT'
        ).rules()[0]
        assert rule.metadata["source_rule_id"] == "42"

    @pytest.mark.parametrize(
        "line,lineno,message",
        [
            ("-A FORWARD -i eth0 -j ACCEPT", 1, "interface"),
            ("-A FORWARD -m conntrack --ctstate NEW -j ACCEPT", 1, "conntrack"),
            ("-A FORWARD ! -s 10.0.0.0/8 -j DROP", 1, "negation"),
            ("-A FORWARD -s 10.0.0.0/8", 1, "no -j target"),
            ("-A FORWARD --dport 80 -j ACCEPT", 1, "explicit -p protocol"),
            ("-A FORWARD -p icmp --dport 80 -j ACCEPT", 1, "meaningless"),
            ("-A FORWARD -p tcp --dports 1,2 -j ACCEPT", 1, "multiport"),
            ("-A FORWARD -j SNAT", 1, "unsupported target"),
            ("-A FORWARD -s 10.0.0.0/33 -j DROP", 1, "CIDR"),
            ("-A FORWARD -p tcp --dport 90:80 -j DROP", 1, "90:80"),
        ],
    )
    def test_rejections_carry_the_line_number(self, line, lineno, message):
        with pytest.raises(TraceIOError, match=f"line {lineno}:.*{message}"):
            _parse(line)

    def test_non_filter_table_rejected_with_line_number(self):
        with pytest.raises(TraceIOError, match="line 3:.*'nat'"):
            _parse(
                """
                *nat
                :PREROUTING ACCEPT [0:0]
                -A PREROUTING -j ACCEPT
                COMMIT
                """
            )

    def test_error_line_numbers_count_the_physical_file(self):
        with pytest.raises(TraceIOError, match="line 5:"):
            _parse(
                """
                *filter
                :FORWARD ACCEPT [0:0]
                -A FORWARD -j ACCEPT

                -A FORWARD -j BOGUS
                COMMIT
                """
            )


class TestExport:
    def test_output_is_reimportable_and_declares_redirect_chain(
        self, handcrafted_ruleset
    ):
        text, report = format_iptables_save(handcrafted_ruleset)
        assert report.exact and not report.expanded
        assert text.startswith("*filter\n:FORWARD ACCEPT [0:0]\n")
        assert ":REPRO-REDIRECT - [0:0]" in text  # rule 2 redirects
        assert text.rstrip().endswith("COMMIT")
        reimported = parse_iptables_save(text.splitlines())
        assert len(reimported) == len(handcrafted_ruleset)
        for original, back in zip(handcrafted_ruleset.rules(), reimported.rules()):
            assert int(back.metadata["source_rule_id"]) == original.rule_id
            assert back.action is original.action
            assert back.src_prefix == original.src_prefix
            assert back.dst_prefix == original.dst_prefix
            assert back.src_port == original.src_port
            assert back.dst_port == original.dst_port
            assert back.protocol == original.protocol

    def test_wildcard_protocol_with_ports_expands_to_tcp_udp_pair(self):
        rule = Rule.build(7, 0, dst_port="80:90", action=RuleAction.DROP)
        text, report = format_iptables_save([rule])
        assert report.expanded == [7]
        assert report.exact  # 0 not in 80:90 -> exact over realizable packets
        lines = [line for line in text.splitlines() if line.startswith("-A")]
        assert len(lines) == 2
        assert "-p tcp" in lines[0] and "-p udp" in lines[1]
        assert all('"rid:7"' in line for line in lines)

    def test_expansion_covering_port_zero_is_flagged_lossy(self):
        rule = Rule.build(3, 0, dst_port="0:90", action=RuleAction.DROP)
        _, report = format_iptables_save([rule])
        assert [note.category for note in report.notes] == ["lossy"]

    def test_ports_on_non_port_protocol_drop_or_omit(self):
        vacuous = Rule.build(1, 0, protocol=47, dst_port="0:90")
        unmatchable = Rule.build(2, 1, protocol=47, dst_port="80:90")
        text, report = format_iptables_save([vacuous, unmatchable])
        assert sorted(note.category for note in report.notes) == [
            "omitted", "ports_dropped",
        ]
        lines = [line for line in text.splitlines() if line.startswith("-A")]
        assert len(lines) == 1 and "--dport" not in lines[0]

    def test_strict_mode_raises_instead_of_rewriting(self):
        rule = Rule.build(0, 0, dst_port="80:90")
        with pytest.raises(TraceIOError, match="strict mode"):
            format_iptables_save([rule], mode="strict")
        with pytest.raises(TraceIOError, match="export mode"):
            format_iptables_save([rule], mode="best_effort")

    def test_file_round_trip(self, tmp_path, handcrafted_ruleset):
        path = tmp_path / "fw.iptables"
        report = dump_iptables_file(handcrafted_ruleset, path)
        assert report.lines_out == len(handcrafted_ruleset)
        assert len(load_iptables_file(path)) == len(handcrafted_ruleset)

    def test_missing_file_is_a_trace_error(self, tmp_path):
        with pytest.raises(TraceIOError, match="no-such"):
            load_iptables_file(tmp_path / "no-such.iptables")


# Boundary-heavy port values: hypothesis must hit 0/65535/adjacent exactly.
_ports = st.one_of(
    st.sampled_from([0, 1, 65534, 65535]), st.integers(0, 65535)
)


@given(
    rule_id=st.integers(0, 10_000),
    protocol=st.sampled_from([6, 17]),
    src_ports=st.tuples(_ports, _ports),
    dst_ports=st.tuples(_ports, _ports),
    src_len=st.integers(0, 32),
    dst_len=st.integers(0, 32),
    src_bits=st.integers(0, 2**32 - 1),
    dst_bits=st.integers(0, 2**32 - 1),
    action=st.sampled_from(list(RuleAction)),
)
@settings(max_examples=120, deadline=None)
def test_export_import_round_trip_property(
    rule_id, protocol, src_ports, dst_ports, src_len, dst_len,
    src_bits, dst_bits, action,
):
    """tcp/udp rules survive export -> import with every field bit-exact."""

    def cidr(bits: int, length: int) -> str:
        value = (bits >> (32 - length) << (32 - length)) if length else 0
        return f"{value >> 24}.{(value >> 16) & 255}.{(value >> 8) & 255}.{value & 255}/{length}"

    src_lo, src_hi = min(src_ports), max(src_ports)
    dst_lo, dst_hi = min(dst_ports), max(dst_ports)
    rule = Rule.build(
        rule_id, 0,
        src=cidr(src_bits, src_len), dst=cidr(dst_bits, dst_len),
        src_port=f"{src_lo}:{src_hi}", dst_port=f"{dst_lo}:{dst_hi}",
        protocol=protocol, action=action,
    )
    text, report = format_iptables_save([rule])
    assert report.exact and report.lines_out == 1
    back = parse_iptables_save(text.splitlines()).rules()[0]
    assert int(back.metadata["source_rule_id"]) == rule_id
    assert back.src_prefix == rule.src_prefix
    assert back.dst_prefix == rule.dst_prefix
    assert (back.src_port.low, back.src_port.high) == (src_lo, src_hi)
    assert (back.dst_port.low, back.dst_port.high) == (dst_lo, dst_hi)
    assert back.protocol.value == protocol
    # REJECT never appears on export, so every action survives exactly.
    assert back.action is rule.action


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_import_port_ranges_match_like_the_source_text(data):
    """An imported port constraint matches exactly its textual interval."""
    lo = data.draw(_ports, label="lo")
    hi = data.draw(_ports.filter(lambda v: v >= lo), label="hi")
    probe = data.draw(st.integers(0, 65535), label="probe")
    rule = _parse(f"-A FORWARD -p tcp --dport {lo}:{hi} -j DROP").rules()[0]
    packet = PacketHeader(1, 2, 9, probe, 6)
    assert rule.matches(packet) == (lo <= probe <= hi)


def _realize(trace):
    """Realizable reading of a synthetic trace: non-port protocols carry no
    ports — exactly what ``ports="transport"`` yields on a real capture."""
    return [
        p if p.protocol in PORT_PROTOCOLS
        else PacketHeader(p.src_ip, p.dst_ip, 0, 0, p.protocol)
        for p in trace
    ]


def test_acl_export_reimport_is_semantically_identical(tmp_path):
    """Acceptance oracle: exported+reimported ACL classifies like the source.

    For every realizable packet, the highest-priority match of the
    reimported ruleset must map (via its ``rid`` comment) to the same source
    rule — same id, same action — that the original ruleset picks.
    """
    # Seed 1 yields an exact export that still exercises tcp+udp expansion
    # (14 wildcard-protocol rules with 0-free port ranges, zero notes).
    ruleset = generate_ruleset(FilterFlavor.ACL, 200, seed=1)
    path = tmp_path / "acl.iptables"
    report = dump_iptables_file(ruleset, path)
    assert report.exact, [note.detail for note in report.notes]
    assert report.expanded  # the expansion path really ran
    reimported = load_iptables_file(path)
    assert len(reimported) == len(ruleset) + len(report.expanded)

    trace = _realize(generate_trace(ruleset, count=3000, seed=77))
    mismatches = 0
    for packet in trace:
        original = ruleset.highest_priority_match(packet)
        back = reimported.highest_priority_match(packet)
        if original is None:
            mismatches += back is not None
            continue
        if back is None:
            mismatches += 1
            continue
        if int(back.metadata["source_rule_id"]) != original.rule_id:
            mismatches += 1
        elif back.action is not original.action:
            mismatches += 1
    assert mismatches == 0

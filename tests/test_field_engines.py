"""Unit tests for the single-field lookup engines."""

from __future__ import annotations

import pytest

from repro.exceptions import FieldLookupError
from repro.fields import (
    BinarySearchTree,
    MultibitTrie,
    PortRegisterFile,
    ProtocolTable,
    SegmentTrie,
)
from repro.fields.multibit_trie import PAPER_SEGMENT_STRIDES


class TestMultibitTrie:
    def make_loaded(self):
        trie = MultibitTrie()
        # (prefix, label, priority) — nested prefixes to exercise multi-match.
        for spec, label, priority in (
            ((0x0A00, 8), 1, 10),   # 0x0Axx
            ((0x0A10, 12), 2, 5),   # 0x0A1x
            ((0x0A12, 16), 3, 1),   # exact
            ((0, 0), 0, 99),        # wildcard
        ):
            trie.insert(spec, label, priority)
        return trie

    def test_paper_strides(self):
        assert PAPER_SEGMENT_STRIDES == (5, 5, 6)
        assert MultibitTrie().lookup_cycles == 6  # 3 levels x 2 cycles

    def test_strides_must_cover_width(self):
        with pytest.raises(FieldLookupError):
            MultibitTrie(width=16, strides=(5, 5, 5))
        with pytest.raises(FieldLookupError):
            MultibitTrie(width=16, strides=(16, 0))
        with pytest.raises(FieldLookupError):
            MultibitTrie(cycles_per_level=0)

    def test_lookup_collects_all_matching_prefixes(self):
        trie = self.make_loaded()
        result = trie.lookup(0x0A12)
        assert set(result.labels) == {0, 1, 2, 3}
        # priority order: exact (1) first, wildcard (99) last
        assert result.labels[0] == 3
        assert result.labels[-1] == 0

    def test_lookup_partial_match(self):
        trie = self.make_loaded()
        assert set(trie.lookup(0x0A55).labels) == {0, 1}
        assert set(trie.lookup(0x0B00).labels) == {0}

    def test_lookup_counts_one_access_per_level(self):
        trie = self.make_loaded()
        assert 1 <= trie.lookup(0x0A12).memory_accesses <= len(trie.strides)

    def test_lookup_out_of_range_raises(self):
        with pytest.raises(FieldLookupError):
            MultibitTrie().lookup(1 << 16)

    def test_insert_duplicate_prefix_label_raises(self):
        trie = self.make_loaded()
        with pytest.raises(FieldLookupError):
            trie.insert((0x0A00, 8), 1, 10)

    def test_same_prefix_two_labels_supported(self):
        trie = MultibitTrie()
        trie.insert((0x1000, 8), 5, 1)
        trie.insert((0x1000, 8), 6, 2)
        assert set(trie.lookup(0x1034).labels) == {5, 6}

    def test_remove_restores_previous_behaviour(self):
        trie = self.make_loaded()
        before_nodes = trie.node_count()
        trie.insert((0x0B00, 8), 9, 2)
        trie.remove((0x0B00, 8), 9)
        assert set(trie.lookup(0x0B77).labels) == {0}
        assert trie.node_count() == before_nodes

    def test_remove_unknown_raises(self):
        with pytest.raises(FieldLookupError):
            self.make_loaded().remove((0x0C00, 8), 1)

    def test_reprioritize_changes_hpml(self):
        trie = self.make_loaded()
        trie.reprioritize((0, 0), 0, priority=0)
        assert trie.lookup(0x0B00).matches[0] == (0, 0)

    def test_wildcard_only_matches_everything(self):
        trie = MultibitTrie()
        trie.insert((0, 0), 7, 0)
        for value in (0, 0xFFFF, 0x1234):
            assert trie.lookup(value).labels == [7]

    def test_expansion_cost_reported(self):
        trie = MultibitTrie()
        # A /6 prefix expands over 2^(10-6)=16 level-2 nodes (boundaries 5,10,16)
        cost = trie.insert((0x4000, 6), 1, 1)
        assert cost.nodes_touched == 16

    def test_memory_bits_grow_with_nodes(self):
        empty = MultibitTrie().memory_bits()
        assert self.make_loaded().memory_bits() > empty

    def test_stored_prefixes(self):
        assert (0x0A00, 8) in self.make_loaded().stored_prefixes()

    def test_invalid_specs_rejected(self):
        trie = MultibitTrie()
        with pytest.raises(FieldLookupError):
            trie.insert("not-a-tuple", 1, 1)
        with pytest.raises(FieldLookupError):
            trie.insert((0, 20), 1, 1)
        with pytest.raises(FieldLookupError):
            trie.insert((1 << 16, 4), 1, 1)

    def test_pipelined_flag(self):
        assert MultibitTrie().pipelined
        assert not MultibitTrie(pipelined=False).pipelined

    def test_describe(self):
        info = self.make_loaded().describe()
        assert info["engine"] == "mbt"
        assert info["lookup_cycles"] == 6


class TestBinarySearchTree:
    def make_loaded(self):
        bst = BinarySearchTree()
        for spec, label, priority in (
            ((0x0A00, 8), 1, 10),
            ((0x0A10, 12), 2, 5),
            ((0x0A12, 16), 3, 1),
            ((0, 0), 0, 99),
        ):
            bst.insert(spec, label, priority)
        return bst

    def test_worst_case_cycles_is_width(self):
        assert BinarySearchTree().lookup_cycles == 16

    def test_not_pipelined(self):
        assert not BinarySearchTree().pipelined

    def test_lookup_matches_multibit_trie(self):
        bst = self.make_loaded()
        trie = TestMultibitTrie().make_loaded()
        for value in (0x0A12, 0x0A55, 0x0B00, 0xFFFF, 0):
            assert set(bst.lookup(value).labels) == set(trie.lookup(value).labels), hex(value)

    def test_priority_order_preserved(self):
        result = self.make_loaded().lookup(0x0A12)
        assert result.labels[0] == 3

    def test_lookup_accesses_bounded_by_log(self):
        bst = self.make_loaded()
        result = bst.lookup(0x0A12)
        assert result.memory_accesses <= 16

    def test_empty_tree_returns_no_labels(self):
        result = BinarySearchTree().lookup(42)
        assert not result.matched

    def test_insert_duplicate_raises(self):
        bst = self.make_loaded()
        with pytest.raises(FieldLookupError):
            bst.insert((0x0A00, 8), 9, 0)

    def test_remove(self):
        bst = self.make_loaded()
        bst.remove((0x0A12, 16), 3)
        assert 3 not in bst.lookup(0x0A12).labels
        with pytest.raises(FieldLookupError):
            bst.remove((0x0A12, 16), 3)

    def test_update_marks_rebuild(self):
        bst = BinarySearchTree()
        cost = bst.insert((0x1234, 16), 1, 1)
        assert cost.rebuilt

    def test_reprioritize(self):
        bst = self.make_loaded()
        bst.reprioritize((0, 0), 0, priority=0)
        assert bst.lookup(0x0B00).matches[0] == (0, 0)
        with pytest.raises(FieldLookupError):
            bst.reprioritize((0x7777, 16), 1, 0)

    def test_memory_is_smaller_than_mbt_for_same_content(self, small_acl_ruleset):
        from repro.core.dimensions import rule_dimension_specs

        prefixes = sorted({rule_dimension_specs(rule)["src_ip_hi"] for rule in small_acl_ruleset})
        mbt, bst = MultibitTrie(), BinarySearchTree()
        for label, prefix in enumerate(prefixes):
            mbt.insert(prefix, label, label)
            bst.insert(prefix, label, label)
        assert bst.memory_bits() < mbt.memory_bits()

    def test_node_count_tracks_boundaries(self):
        bst = BinarySearchTree()
        assert bst.node_count() == 1
        bst.insert((0x8000, 1), 1, 1)
        assert bst.node_count() >= 2

    def test_invalid_inputs(self):
        bst = BinarySearchTree()
        with pytest.raises(FieldLookupError):
            bst.lookup(1 << 16)
        with pytest.raises(FieldLookupError):
            bst.insert((0, 17), 1, 1)


class TestSegmentTrie:
    def make_loaded(self):
        trie = SegmentTrie(levels=4)
        trie.insert((0, 65535), 0, 9)     # wildcard
        trie.insert((80, 80), 1, 0)       # exact
        trie.insert((1024, 2047), 2, 3)   # aligned range
        trie.insert((7810, 7820), 3, 1)   # unaligned range
        return trie

    def test_level_configuration(self):
        assert SegmentTrie(levels=4).lookup_cycles == 4
        assert SegmentTrie(levels=2).lookup_cycles == 2
        with pytest.raises(FieldLookupError):
            SegmentTrie(levels=3)
        with pytest.raises(FieldLookupError):
            SegmentTrie(levels=0)

    def test_lookup_exact_and_ranges(self):
        trie = self.make_loaded()
        assert set(trie.lookup(80).labels) == {0, 1}
        assert set(trie.lookup(1500).labels) == {0, 2}
        assert set(trie.lookup(7815).labels) == {0, 3}
        assert set(trie.lookup(50000).labels) == {0}

    def test_priority_order(self):
        assert self.make_loaded().lookup(80).labels[0] == 1

    def test_shared_expansion_prefixes_keep_both_labels(self):
        trie = SegmentTrie(levels=4)
        trie.insert((1024, 2047), 1, 1)
        trie.insert((1024, 3071), 2, 2)  # shares the 1024-2047 expansion block
        assert set(trie.lookup(1500).labels) == {1, 2}
        assert set(trie.lookup(2500).labels) == {2}

    def test_duplicate_range_rejected(self):
        trie = self.make_loaded()
        with pytest.raises(FieldLookupError):
            trie.insert((80, 80), 7, 0)

    def test_remove(self):
        trie = self.make_loaded()
        trie.remove((7810, 7820), 3)
        assert set(trie.lookup(7815).labels) == {0}
        with pytest.raises(FieldLookupError):
            trie.remove((7810, 7820), 3)

    def test_invalid_specs(self):
        trie = SegmentTrie()
        with pytest.raises(FieldLookupError):
            trie.insert((10, 5), 1, 1)
        with pytest.raises(FieldLookupError):
            trie.lookup(1 << 16)

    def test_memory_and_nodes(self):
        trie = self.make_loaded()
        assert trie.node_count() > 1
        assert trie.memory_bits() > 0
        assert trie.pipelined


class TestPortRegisterFile:
    def make_table_iv(self):
        registers = PortRegisterFile(capacity=8)
        registers.insert((0, 65355), 0, priority=2)   # A
        registers.insert((7812, 7812), 1, priority=0)  # B
        registers.insert((7810, 7820), 2, priority=1)  # C
        return registers

    def test_table_iv_label_order(self):
        result = self.make_table_iv().lookup(7812)
        assert result.labels == [1, 2, 0]  # B, C, A
        assert result.cycles == 2
        assert result.memory_accesses == 1

    def test_lookup_outside_all_ranges(self):
        registers = PortRegisterFile()
        registers.insert((80, 80), 0, 0)
        assert not registers.lookup(81).matched

    def test_capacity_enforced(self):
        registers = PortRegisterFile(capacity=1)
        registers.insert((80, 80), 0, 0)
        with pytest.raises(FieldLookupError):
            registers.insert((81, 81), 1, 1)

    def test_duplicate_range_rejected(self):
        registers = self.make_table_iv()
        with pytest.raises(FieldLookupError):
            registers.insert((7812, 7812), 9, 9)

    def test_remove_requires_matching_label(self):
        registers = self.make_table_iv()
        with pytest.raises(FieldLookupError):
            registers.remove((7812, 7812), 99)
        registers.remove((7812, 7812), 1)
        assert registers.lookup(7812).labels == [2, 0]

    def test_reprioritize(self):
        registers = self.make_table_iv()
        registers.reprioritize((0, 65355), 0, priority=0)
        assert registers.lookup(7812).labels == [1, 2, 0]  # specificity order unchanged
        with pytest.raises(FieldLookupError):
            registers.reprioritize((1, 2), 0, 0)

    def test_memory_bits_fixed_by_capacity(self):
        assert PortRegisterFile(capacity=128).memory_bits() == 128 * PortRegisterFile.REGISTER_WIDTH

    def test_table_iv_rows_rendering(self):
        rows = self.make_table_iv().table_iv_rows({0: "A", 1: "B", 2: "C"})
        assert rows[0]["Label"] == "A"
        assert rows[1]["Match method"] == "Exact matching"
        assert rows[2]["Match method"] == "Range matching"

    def test_invalid_construction_and_specs(self):
        with pytest.raises(FieldLookupError):
            PortRegisterFile(capacity=0)
        registers = PortRegisterFile()
        with pytest.raises(FieldLookupError):
            registers.insert((5, 2), 0, 0)
        with pytest.raises(FieldLookupError):
            registers.lookup(1 << 16)

    def test_node_count(self):
        assert self.make_table_iv().node_count() == 3


class TestProtocolTable:
    def make_loaded(self):
        table = ProtocolTable()
        table.insert((False, 6), 0, priority=0)
        table.insert((False, 17), 1, priority=1)
        table.insert((True, 0), 2, priority=5)
        return table

    def test_single_cycle_lookup(self):
        table = self.make_loaded()
        result = table.lookup(6)
        assert result.cycles == 1
        assert result.memory_accesses == 1

    def test_exact_before_wildcard(self):
        assert self.make_loaded().lookup(6).labels == [0, 2]
        assert self.make_loaded().lookup(17).labels == [1, 2]

    def test_unknown_protocol_matches_only_wildcard(self):
        assert self.make_loaded().lookup(47).labels == [2]

    def test_no_wildcard_no_match(self):
        table = ProtocolTable()
        table.insert((False, 6), 0, 0)
        assert not table.lookup(17).matched

    def test_duplicate_rejected(self):
        table = self.make_loaded()
        with pytest.raises(FieldLookupError):
            table.insert((False, 6), 7, 7)
        with pytest.raises(FieldLookupError):
            table.insert((True, 0), 7, 7)

    def test_remove(self):
        table = self.make_loaded()
        table.remove((False, 6), 0)
        assert table.lookup(6).labels == [2]
        table.remove((True, 0), 2)
        assert not table.lookup(99).matched
        with pytest.raises(FieldLookupError):
            table.remove((False, 6), 0)

    def test_wildcard_insert_touches_whole_lut(self):
        table = ProtocolTable()
        cost = table.insert((True, 0), 0, 0)
        assert cost.memory_accesses == 256

    def test_reprioritize(self):
        table = self.make_loaded()
        table.reprioritize((False, 6), 0, 9)
        table.reprioritize((True, 0), 2, 0)
        assert table.lookup(6).matches == ((0, 9), (2, 0))
        with pytest.raises(FieldLookupError):
            table.reprioritize((False, 50), 0, 0)

    def test_memory_bits_constant(self):
        assert ProtocolTable().memory_bits() == 256 * ProtocolTable.WORD_WIDTH

    def test_invalid_specs(self):
        table = ProtocolTable()
        with pytest.raises(FieldLookupError):
            table.insert((False, 300), 0, 0)
        with pytest.raises(FieldLookupError):
            table.insert(("yes", 6), 0, 0)
        with pytest.raises(FieldLookupError):
            table.lookup(300)

    def test_node_count(self):
        assert self.make_loaded().node_count() == 3

"""Tests for the vectorized batch engine walks and their support layers.

The acceptance property is *bit-exact equivalence*: for every engine and
every input value, ``batch_walker(engine).resolve(values)`` must equal
``[engine.lookup(v) for v in values]`` — matches, ordering, access counts
and cycles — in both the NumPy and the pure-Python implementations.  Also
covers walker invalidation on engine mutation, the batched hash/rule-filter
primitives, and the bounded cache types.
"""

from __future__ import annotations

import random

import pytest

from repro.api import create_classifier
from repro.core.dimensions import DIMENSIONS
from repro.exceptions import ConfigurationError, FieldLookupError
from repro.fields.vectorized import (
    HAVE_NUMPY,
    BstBatchWalker,
    PortBatchWalker,
    ScalarBatchWalker,
    TrieBatchWalker,
    batch_walker,
)
from repro.hardware.hash_unit import HashUnit
from repro.perf.lru import BoundedCache, LRUCache

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

#: Both walker implementations; numpy is skipped if the import is missing.
IMPLEMENTATIONS = [False] + ([True] if HAVE_NUMPY else [])


def _sample_values(engine_name: str, rng: random.Random, count: int = 400):
    top = 0xFF if engine_name == "protocol" else 0xFFFF
    return [rng.randint(0, top) for _ in range(count)]


@pytest.fixture(scope="module", params=["mbt", "bst"])
def built_classifier(request, small_acl_ruleset):
    return create_classifier(
        "configurable", small_acl_ruleset, ip_algorithm=request.param
    )


class TestWalkerEquivalence:
    @pytest.mark.parametrize("use_numpy", IMPLEMENTATIONS)
    def test_every_dimension_bit_exact(self, built_classifier, use_numpy):
        rng = random.Random(2014)
        for name in DIMENSIONS:
            engine = built_classifier.engines[name]
            walker = batch_walker(engine, use_numpy=use_numpy)
            values = _sample_values(name, rng)
            assert walker.resolve(values) == [engine.lookup(v) for v in values]
            walker.detach()

    @pytest.mark.parametrize("use_numpy", IMPLEMENTATIONS)
    def test_walker_types(self, built_classifier, use_numpy):
        expected = {
            "mbt": TrieBatchWalker,
            "bst": BstBatchWalker,
        }[built_classifier.config.ip_algorithm.value]
        assert isinstance(
            batch_walker(built_classifier.engines["src_ip_lo"], use_numpy=use_numpy),
            expected,
        )
        assert isinstance(
            batch_walker(built_classifier.engines["src_port"], use_numpy=use_numpy),
            PortBatchWalker,
        )
        assert isinstance(
            batch_walker(built_classifier.engines["protocol"], use_numpy=use_numpy),
            ScalarBatchWalker,
        )

    @pytest.mark.parametrize("use_numpy", IMPLEMENTATIONS)
    def test_invalidation_on_mutation(self, small_acl_ruleset, small_fw_ruleset, use_numpy):
        classifier = create_classifier("configurable", small_acl_ruleset)
        engine = classifier.engines["dst_ip_lo"]
        walker = batch_walker(engine, use_numpy=use_numpy)
        rng = random.Random(7)
        values = _sample_values("dst_ip_lo", rng)
        assert walker.resolve(values) == [engine.lookup(v) for v in values]
        # Mutate the engine through the real update path and re-check: the
        # walker must rebuild its flattened view, not replay the stale one.
        import dataclasses

        installed = 0
        for rule in list(small_fw_ruleset):
            try:
                classifier.install(
                    dataclasses.replace(rule, rule_id=10_000 + rule.rule_id)
                )
            except Exception:
                continue
            installed += 1
            if installed >= 20:
                break
        assert installed > 0
        assert walker.resolve(values) == [engine.lookup(v) for v in values]
        # Exactly two flat-view builds: the initial one and the post-mutation
        # rebuild — resolving again on an unchanged engine stays at two.
        assert walker.rebuilds == 2
        assert walker.resolve(values) == [engine.lookup(v) for v in values]
        assert walker.rebuilds == 2
        walker.detach()

    @pytest.mark.parametrize("use_numpy", IMPLEMENTATIONS)
    def test_out_of_range_value_rejected(self, built_classifier, use_numpy):
        for name, bad in (("src_ip_lo", 1 << 16), ("src_port", -1)):
            walker = batch_walker(built_classifier.engines[name], use_numpy=use_numpy)
            with pytest.raises(FieldLookupError):
                walker.resolve([0, bad])
            walker.detach()

    def test_empty_batch(self, built_classifier):
        walker = batch_walker(built_classifier.engines["src_ip_hi"])
        assert walker.resolve([]) == []
        walker.detach()


class TestBatchedHashAndFilter:
    def test_hash_batch_bit_exact(self):
        unit = HashUnit(table_bits=14)
        rng = random.Random(3)
        keys = [rng.getrandbits(68) for _ in range(4000)] + list(range(40))
        assert unit.hash_batch(keys) == [unit.hash(key) for key in keys]

    def test_hash_batch_small_fallback(self):
        unit = HashUnit(table_bits=10)
        keys = [5, 6, 7]
        assert unit.hash_batch(keys) == [unit.hash(key) for key in keys]

    def test_lookup_batch_matches_lookup(self, small_acl_ruleset):
        classifier = create_classifier("configurable", small_acl_ruleset)
        rule_filter = classifier.rule_filter
        stored_keys = [entry.label_key for entry in rule_filter.entries()][:200]
        rng = random.Random(11)
        keys = stored_keys + [rng.getrandbits(68) for _ in range(200)]
        batch = rule_filter.lookup_batch(keys + keys)  # duplicates resolved once
        assert set(batch) == set(keys)
        for key in keys:
            single = rule_filter.lookup(key)
            entry, probes = batch[key]
            assert entry == single.entry
            assert probes == single.probes
            # lookup() charges one memory access per probe; the compact pair
            # preserves exactly that.
            assert probes == single.memory_accesses

    def test_lookup_batch_counts_reads_in_bulk(self, small_acl_ruleset):
        classifier = create_classifier("configurable", small_acl_ruleset)
        rule_filter = classifier.rule_filter
        keys = [entry.label_key for entry in rule_filter.entries()][:64]
        rule_filter.memory.reset_counters()
        batch = rule_filter.lookup_batch(keys)
        bulk_reads = rule_filter.memory.counter.reads
        assert bulk_reads == sum(probes for _, probes in batch.values())


class TestWideLayoutStaging:
    def test_cached_walk_handles_shifts_past_bit_63(self):
        """Custom layouts whose first field shifts >= 64 bits stay exact.

        With ``ip_label_bits=17`` the packed key is 84 bits and the first
        field's shift is 67 — the two-limb NumPy staging must place it
        entirely in the high limb (shifting a uint64 by >= 64 is undefined),
        and the result must match the uncached combine() walk.
        """
        import random

        from repro.core.config import CombinerMode
        from repro.core.label_combiner import DIMENSIONS, LabelCombiner
        from repro.hardware.hash_unit import LabelKeyLayout
        from repro.hardware.rule_filter import RuleFilterMemory
        from repro.rules.rule import Rule, RuleAction

        layout = LabelKeyLayout(ip_label_bits=17)
        assert layout.total_bits == 84
        rule_filter = RuleFilterMemory(capacity=1024)
        combiner = LabelCombiner(rule_filter, layout, mode=CombinerMode.CROSS_PRODUCT)
        rng = random.Random(12)
        widths = layout.field_widths()
        lists = tuple(
            tuple(
                (rng.randrange(1 << widths[dim]), rng.randrange(50))
                for _ in range(3)
            )
            for dim in range(len(DIMENSIONS))
        )
        # Store rules under a handful of the reachable combinations.
        for rule_id in range(12):
            labels = [rng.choice(entries)[0] for entries in lists]
            rule_filter.insert(
                layout.pack(labels),
                Rule.build(rule_id, rng.randrange(50), action=RuleAction.DROP),
            )
        reference = combiner.combine(dict(zip(DIMENSIONS, lists)))
        cached = combiner.combine_with_cache(lists, BoundedCache(512), BoundedCache(64))
        assert cached == reference


class TestBoundedCaches:
    def test_lru_eviction_order_and_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a": "b" is now the LRU entry
        cache.put("c", 3)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.evictions == 1  # clear() is invalidation, not eviction

    def test_lru_put_refreshes_existing(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: nothing evicted
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_bounded_cache_fifo(self):
        cache = BoundedCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # reads do not refresh: "a" stays oldest
        cache.put("c", 3)
        assert "a" not in cache and cache.evictions == 1

    def test_bounded_cache_put_many(self):
        cache = BoundedCache(3)
        cache.put("a", 1)
        cache.put_many({"b": 2, "c": 3, "d": 4})
        assert len(cache) == 3
        assert "a" not in cache  # oldest evicted first
        assert cache.evictions == 1

    @pytest.mark.parametrize("cache_type", [LRUCache, BoundedCache])
    def test_non_positive_limit_rejected(self, cache_type):
        with pytest.raises(ConfigurationError):
            cache_type(0)

"""Tests for the unified classification API (repro.api).

Covers the tentpole redesign: registry round-trips over every registered
engine, protocol conformance, batch/single-packet equivalence against the
linear-search ground truth, the fluent config builder, the streaming session
runner, the baseline factory path, and the deprecation shims on the old
method names.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BaselineAdapter,
    BatchResult,
    Classification,
    ClassificationSession,
    PacketClassifier,
    SessionStats,
    UnknownClassifierError,
    available_classifiers,
    classifier_description,
    create_classifier,
    register_classifier,
)
from repro.baselines.base import BaselineClassifier, ClassificationOutcome
from repro.baselines.linear_search import LinearSearchClassifier
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm
from repro.exceptions import ConfigurationError, RemovedApiError
from repro.rules.rule import Rule, RuleAction
from repro.rules.trace import generate_trace

#: Names the issue requires: the architecture plus the five Table I baselines.
REQUIRED_NAMES = ("configurable", "linear_search", "hypercuts", "rfc", "dcfl", "bitvector")


@pytest.fixture(scope="module")
def kilo_trace(small_acl_ruleset):
    """A 1000-packet trace over the shared small ACL rule set."""
    return generate_trace(small_acl_ruleset, count=1000, seed=99)


@pytest.fixture(scope="module")
def ground_truth(small_acl_ruleset, kilo_trace):
    """Linear-scan HPMR ids for every packet of the kilo trace."""
    return [
        match.rule_id if (match := small_acl_ruleset.highest_priority_match(p)) else None
        for p in kilo_trace
    ]


class TestRegistry:
    def test_required_names_registered(self):
        names = available_classifiers()
        for name in REQUIRED_NAMES:
            assert name in names

    def test_unknown_name_raises(self, small_acl_ruleset):
        with pytest.raises(UnknownClassifierError):
            create_classifier("tcam", small_acl_ruleset)

    def test_double_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_classifier("configurable")(lambda ruleset: None)

    def test_descriptions_available(self):
        for name in available_classifiers():
            assert isinstance(classifier_description(name), str)

    def test_baseline_options_forwarded(self, small_acl_ruleset):
        shallow = create_classifier("hypercuts", small_acl_ruleset, binth=64)
        deep = create_classifier("hypercuts", small_acl_ruleset, binth=4)
        assert deep.engine.node_count >= shallow.engine.node_count

    def test_configurable_options_forwarded(self, small_acl_ruleset):
        classifier = create_classifier(
            "configurable", small_acl_ruleset, ip_algorithm="bst", combiner="first_label"
        )
        assert classifier.config.ip_algorithm is IpAlgorithm.BST
        assert classifier.config.combiner_mode is CombinerMode.FIRST_LABEL

    def test_configurable_accepts_full_config(self, small_acl_ruleset):
        config = ClassifierConfig.builder().clock_mhz(200.0).build()
        classifier = create_classifier("configurable", small_acl_ruleset, config=config)
        assert classifier.config.clock_mhz == 200.0


@pytest.mark.parametrize("name", sorted(set(REQUIRED_NAMES) | {"efficuts", "option1", "option2"}))
class TestProtocolConformance:
    def test_round_trip(self, name, small_acl_ruleset, small_trace):
        classifier = create_classifier(name, small_acl_ruleset)
        assert isinstance(classifier, PacketClassifier)
        assert classifier.name == name
        stats = classifier.stats()
        assert stats.rules == len(small_acl_ruleset)
        assert classifier.memory_bits() > 0
        result = classifier.classify(small_trace[0])
        assert isinstance(result, Classification)
        assert result.memory_accesses > 0


@pytest.mark.parametrize("name", sorted(set(REQUIRED_NAMES) | {"efficuts", "option1", "option2"}))
def test_batch_equals_single_and_ground_truth(name, small_acl_ruleset, kilo_trace, ground_truth):
    """Acceptance: 1k-packet classify_batch == per-packet classify, == linear scan."""
    classifier = create_classifier(name, small_acl_ruleset)
    batch = classifier.classify_batch(kilo_trace)
    assert isinstance(batch, BatchResult)
    assert batch.packets == len(kilo_trace)
    singles = [classifier.classify(packet) for packet in kilo_trace]
    assert list(batch.results) == singles
    assert [result.rule_id for result in batch] == ground_truth


class TestUnifiedUpdates:
    """Install/remove through the protocol, on a ruleset with priority 0 free."""

    def _probe_rule(self):
        return Rule.build(
            9999, 0, src="10.0.0.0/8", dst="192.168.0.0/16", src_port="0:65535",
            dst_port="80:80", protocol=6, action=RuleAction.REDIRECT_GROUP,
        )

    def _base(self, handcrafted_ruleset):
        return handcrafted_ruleset.filter(lambda rule: rule.rule_id != 0, name="trimmed")

    def test_configurable_install_remove(self, handcrafted_ruleset, web_packet):
        classifier = create_classifier("configurable", self._base(handcrafted_ruleset))
        assert classifier.classify(web_packet).rule_id == 1
        classifier.install(self._probe_rule())
        assert classifier.classify(web_packet).rule_id == 9999
        classifier.remove(9999)
        assert classifier.classify(web_packet).rule_id == 1

    def test_baseline_install_remove_rebuilds(self, handcrafted_ruleset, web_packet):
        base = self._base(handcrafted_ruleset)
        classifier = create_classifier("linear_search", base)
        assert classifier.classify(web_packet).rule_id == 1
        classifier.install(self._probe_rule())
        assert classifier.classify(web_packet).rule_id == 9999
        assert classifier.stats().rules == len(base) + 1
        classifier.remove(9999)
        assert classifier.classify(web_packet).rule_id == 1

    def test_baseline_rebuild_preserves_options(self, small_acl_ruleset):
        classifier = create_classifier("hypercuts", small_acl_ruleset, binth=4)
        rules = small_acl_ruleset.rules()
        classifier.remove(rules[-1].rule_id)
        assert classifier.engine.binth == 4

    def test_direct_wrap_rebuild_preserves_options(self, small_acl_ruleset):
        """Constructor options are recorded even off the create() path."""
        from repro.baselines.hypercuts import HyperCutsClassifier

        adapter = BaselineAdapter(HyperCutsClassifier(small_acl_ruleset, binth=4))
        adapter.remove(small_acl_ruleset.rules()[-1].rule_id)
        assert adapter.engine.binth == 4


class TestConfigBuilder:
    def test_fluent_chain(self):
        config = (
            ClassifierConfig.builder()
            .ip_algorithm("bst")
            .combiner("first_label")
            .clock_mhz(150.0)
            .min_packet_bytes(64)
            .provisioning(rule_filter_entries=4096)
            .build()
        )
        assert config.ip_algorithm is IpAlgorithm.BST
        assert config.combiner_mode is CombinerMode.FIRST_LABEL
        assert config.clock_mhz == 150.0
        assert config.min_packet_bytes == 64
        assert config.provisioning.rule_filter_entries == 4096

    def test_accepts_enums(self):
        config = ClassifierConfig.builder().ip_algorithm(IpAlgorithm.BST).build()
        assert config.ip_algorithm is IpAlgorithm.BST

    def test_seeded_from_base(self):
        base = ClassifierConfig(clock_mhz=99.0)
        config = ClassifierConfig.builder(base).combiner("first_label").build()
        assert config.clock_mhz == 99.0
        assert config.combiner_mode is CombinerMode.FIRST_LABEL

    def test_invalid_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ClassifierConfig.builder().ip_algorithm("tcam")
        with pytest.raises(ConfigurationError):
            ClassifierConfig.builder().combiner("serial")

    def test_invalid_values_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            ClassifierConfig.builder().mbt_strides((5, 5))
        with pytest.raises(ConfigurationError):
            ClassifierConfig.builder().clock_mhz(-1.0)


class TestClassificationSession:
    def test_chunked_stream_matches_batch(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("linear_search", small_acl_ruleset)
        session = ClassificationSession(classifier, chunk_size=16)
        stats = session.run(small_trace)
        assert isinstance(stats, SessionStats)
        batch = classifier.classify_batch(small_trace)
        assert stats.packets == batch.packets
        assert stats.chunks == (len(small_trace) + 15) // 16
        assert stats.hit_ratio == batch.hit_ratio
        assert stats.average_memory_accesses == batch.average_memory_accesses
        assert stats.memory_bits == classifier.memory_bits()

    def test_generator_input(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset)
        session = ClassificationSession(classifier, chunk_size=32)
        stats = session.run(packet for packet in small_trace)
        assert stats.packets == len(small_trace)
        assert stats.average_latency_cycles is not None

    def test_feeds_accumulate_and_reset(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("linear_search", small_acl_ruleset)
        session = ClassificationSession(classifier, chunk_size=64)
        session.feed(small_trace[:40])
        session.feed(small_trace[40:80])
        assert session.stats().packets == 80
        session.reset()
        assert session.stats().packets == 0

    def test_invalid_chunk_size(self, small_acl_ruleset):
        classifier = create_classifier("linear_search", small_acl_ruleset)
        with pytest.raises(ConfigurationError):
            ClassificationSession(classifier, chunk_size=0)


class TestRemovedApiStubs:
    """The PR 1 DeprecationWarning shims are now one-release error stubs."""

    def test_configurable_lookup_removed(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        with pytest.raises(RemovedApiError, match="classify\\(\\)"):
            classifier.lookup(web_packet)
        # The replacement carries the same information.
        assert classifier.classify(web_packet).detail.match.rule_id == 0

    def test_configurable_classify_trace_removed(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        with pytest.raises(RemovedApiError, match="classify_batch"):
            classifier.classify_trace([web_packet])
        assert classifier.classify_batch([web_packet])[0].rule_id == 0

    def test_baseline_classify_removed(self, handcrafted_ruleset, web_packet):
        classifier = LinearSearchClassifier(handcrafted_ruleset)
        with pytest.raises(RemovedApiError, match="match_packet"):
            classifier.classify(web_packet)
        assert classifier.match_packet(web_packet).rule_id == 0

    def test_switch_classify_trace_removed(self, handcrafted_ruleset, web_packet):
        from repro.controller.channel import ControlChannel
        from repro.controller.switch import Switch

        switch = Switch(datapath_id=1, channel=ControlChannel("test-channel"))
        for rule in handcrafted_ruleset:
            switch.classifier.install(rule)
        with pytest.raises(RemovedApiError, match="classify_batch"):
            switch.classify_trace([web_packet])
        assert switch.classify_batch([web_packet])[0].rule_id == 0


class TestBaselineFactoryPath:
    def test_init_no_longer_builds(self, handcrafted_ruleset):
        classifier = LinearSearchClassifier(handcrafted_ruleset)
        assert not classifier.built
        classifier.ensure_built()
        assert classifier.built

    def test_create_builds(self, handcrafted_ruleset):
        classifier = LinearSearchClassifier.create(handcrafted_ruleset)
        assert classifier.built

    def test_subclass_options_after_super_init(self, handcrafted_ruleset):
        """Regression: build() must not run before subclass attributes exist."""

        class LateOptionClassifier(BaselineClassifier):
            name = "LateOption"

            def __init__(self, ruleset, scale=2):
                super().__init__(ruleset)  # before setting options — now safe
                self.scale = scale

            def build(self):
                self._cost = self.scale * len(self.ruleset)

            def _match(self, packet):
                return ClassificationOutcome(rule=None, memory_accesses=self._cost)

            def _memory_bits(self):
                return self._cost

        classifier = LateOptionClassifier.create(handcrafted_ruleset, scale=3)
        assert classifier.memory_bits() == 3 * len(handcrafted_ruleset)

    def test_direct_construction_builds_lazily_on_use(self, handcrafted_ruleset, web_packet):
        """A directly constructed baseline must not crash on first use."""
        classifier = LinearSearchClassifier(handcrafted_ruleset)
        assert classifier.match_packet(web_packet).rule_id == 0
        assert LinearSearchClassifier(handcrafted_ruleset).memory_bits() > 0

    def test_adapter_over_custom_engine(self, handcrafted_ruleset, web_packet):
        adapter = BaselineAdapter(LinearSearchClassifier(handcrafted_ruleset))
        assert adapter.name == "LinearSearch"
        assert adapter.classify(web_packet).rule_id == 0


class TestClassificationRecord:
    def test_equality_ignores_detail(self):
        a = Classification(rule_id=1, priority=0, action="forward", memory_accesses=3, detail="x")
        b = Classification(rule_id=1, priority=0, action="forward", memory_accesses=3, detail="y")
        assert a == b

    def test_matched_property(self):
        miss = Classification(rule_id=None, priority=None, action=None, memory_accesses=1)
        assert not miss.matched
        hit = Classification(rule_id=7, priority=1, action="drop", memory_accesses=1)
        assert hit.matched

    def test_batch_aggregates(self):
        batch = BatchResult(
            (
                Classification(rule_id=1, priority=0, action="forward", memory_accesses=4,
                               latency_cycles=10),
                Classification(rule_id=None, priority=None, action=None, memory_accesses=8,
                               latency_cycles=20),
            )
        )
        assert batch.packets == 2
        assert batch.matched == 1
        assert batch.hit_ratio == 0.5
        assert batch.average_memory_accesses == 6.0
        assert batch.worst_memory_accesses == 8
        assert batch.average_latency_cycles == 15.0
        assert batch.worst_latency_cycles == 20

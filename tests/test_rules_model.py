"""Unit tests for the packet, rule and rule-set models."""

from __future__ import annotations

import pytest

from repro.exceptions import RuleError, RuleSetError
from repro.rules.packet import FIVE_TUPLE_FIELDS, PacketHeader
from repro.rules.rule import ProtocolMatch, Rule, RuleAction
from repro.rules.ruleset import RuleSet


class TestPacketHeader:
    def test_from_strings_round_trip(self):
        packet = PacketHeader.from_strings("10.0.0.1", "192.168.1.2", 1234, 80, 6)
        assert packet.src_port == 1234
        assert packet.protocol == 6
        assert "10.0.0.1" in str(packet)

    def test_field_accessor(self):
        packet = PacketHeader(1, 2, 3, 4, 5)
        assert [packet.field(name) for name in FIVE_TUPLE_FIELDS] == [1, 2, 3, 4, 5]

    def test_field_accessor_rejects_unknown(self):
        with pytest.raises(RuleError):
            PacketHeader(1, 2, 3, 4, 5).field("ttl")

    def test_as_dict_and_tuple_agree(self):
        packet = PacketHeader(10, 20, 30, 40, 6)
        assert tuple(packet.as_dict().values()) == packet.as_tuple()
        assert tuple(packet) == packet.as_tuple()

    def test_ip_segments(self):
        packet = PacketHeader.from_strings("1.2.3.4", "5.6.7.8", 0, 0, 6)
        segments = packet.ip_segments()
        assert segments["src_ip_hi"] == 0x0102
        assert segments["src_ip_lo"] == 0x0304
        assert segments["dst_ip_hi"] == 0x0506
        assert segments["dst_ip_lo"] == 0x0708

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"src_ip": -1, "dst_ip": 0, "src_port": 0, "dst_port": 0, "protocol": 0},
            {"src_ip": 0, "dst_ip": 1 << 32, "src_port": 0, "dst_port": 0, "protocol": 0},
            {"src_ip": 0, "dst_ip": 0, "src_port": 70000, "dst_port": 0, "protocol": 0},
            {"src_ip": 0, "dst_ip": 0, "src_port": 0, "dst_port": -3, "protocol": 0},
            {"src_ip": 0, "dst_ip": 0, "src_port": 0, "dst_port": 0, "protocol": 300},
        ],
    )
    def test_out_of_range_fields_raise(self, kwargs):
        with pytest.raises(RuleError):
            PacketHeader(**kwargs)

    def test_hashable_and_equal(self):
        assert PacketHeader(1, 2, 3, 4, 5) == PacketHeader(1, 2, 3, 4, 5)
        assert len({PacketHeader(1, 2, 3, 4, 5), PacketHeader(1, 2, 3, 4, 5)}) == 1


class TestProtocolMatch:
    def test_exact_match(self):
        assert ProtocolMatch.exact(6).matches(6)
        assert not ProtocolMatch.exact(6).matches(17)

    def test_wildcard_matches_everything(self):
        assert ProtocolMatch.any().matches(0)
        assert ProtocolMatch.any().matches(255)

    def test_key_canonicalises_wildcard_value(self):
        assert ProtocolMatch(value=17, wildcard=True).key() == ProtocolMatch.any().key()

    def test_str(self):
        assert str(ProtocolMatch.any()) == "*"
        assert str(ProtocolMatch.exact(6)) == "6"

    def test_out_of_range_raises(self):
        with pytest.raises(RuleError):
            ProtocolMatch.exact(256)


class TestRule:
    def test_build_defaults_to_catch_all(self):
        rule = Rule.build(0, 0)
        assert rule.matches(PacketHeader(1, 2, 3, 4, 5))

    def test_matching_respects_every_field(self, handcrafted_ruleset, web_packet, dns_packet):
        rules = {rule.rule_id: rule for rule in handcrafted_ruleset}
        assert rules[0].matches(web_packet)
        assert not rules[0].matches(dns_packet)
        assert rules[2].matches(dns_packet)
        assert rules[4].matches(web_packet) and rules[4].matches(dns_packet)

    def test_overlap_detection(self, handcrafted_ruleset):
        rules = {rule.rule_id: rule for rule in handcrafted_ruleset}
        assert rules[0].overlaps(rules[1])
        assert rules[0].overlaps(rules[4])
        assert not rules[0].overlaps(rules[2])  # different protocol and dst port

    def test_field_keys_identify_unique_values(self):
        a = Rule.build(0, 0, src="10.0.0.0/8", dst_port="80:80", protocol=6)
        b = Rule.build(1, 1, src="10.0.0.0/8", dst_port="80:80", protocol=6)
        assert a.field_keys() == b.field_keys()

    def test_field_key_rejects_unknown_field(self):
        with pytest.raises(RuleError):
            Rule.build(0, 0).field_key("vlan")

    def test_specificity_ordering(self):
        broad = Rule.build(0, 0)
        narrow = Rule.build(1, 1, src="10.0.0.0/32", dst="10.0.0.1/32",
                            src_port="80:80", dst_port="443:443", protocol=6)
        assert narrow.specificity() > broad.specificity()

    def test_with_priority_preserves_identity(self):
        rule = Rule.build(7, 3, src="10.0.0.0/8")
        moved = rule.with_priority(9)
        assert moved.rule_id == 7 and moved.priority == 9
        assert moved.src_prefix == rule.src_prefix

    def test_negative_identifiers_raise(self):
        with pytest.raises(RuleError):
            Rule.build(-1, 0)
        with pytest.raises(RuleError):
            Rule.build(0, -2)

    def test_catch_all_factory(self):
        rule = Rule.catch_all(99, 99)
        assert rule.action is RuleAction.DROP
        assert rule.matches(PacketHeader(0, 0, 0, 0, 0))

    def test_str_contains_action(self):
        assert "drop" in str(Rule.catch_all(1, 1))


class TestRuleSet:
    def test_priority_ordering(self, handcrafted_ruleset):
        priorities = [rule.priority for rule in handcrafted_ruleset.rules()]
        assert priorities == sorted(priorities)

    def test_duplicate_id_rejected(self):
        ruleset = RuleSet([Rule.build(0, 0)])
        with pytest.raises(RuleSetError):
            ruleset.add(Rule.build(0, 1))

    def test_duplicate_priority_rejected(self):
        ruleset = RuleSet([Rule.build(0, 0)])
        with pytest.raises(RuleSetError):
            ruleset.add(Rule.build(1, 0))

    def test_remove_and_contains(self):
        ruleset = RuleSet([Rule.build(0, 0), Rule.build(1, 1)])
        removed = ruleset.remove(0)
        assert removed.rule_id == 0
        assert 0 not in ruleset and 1 in ruleset
        with pytest.raises(RuleSetError):
            ruleset.remove(0)

    def test_get_unknown_raises(self):
        with pytest.raises(RuleSetError):
            RuleSet().get(12)

    def test_highest_priority_match(self, handcrafted_ruleset, web_packet, dns_packet, miss_packet):
        assert handcrafted_ruleset.highest_priority_match(web_packet).rule_id == 0
        assert handcrafted_ruleset.highest_priority_match(dns_packet).rule_id == 2
        assert handcrafted_ruleset.highest_priority_match(miss_packet).rule_id == 4

    def test_highest_priority_match_can_miss(self, handcrafted_ruleset, miss_packet):
        without_default = handcrafted_ruleset.filter(lambda rule: rule.rule_id != 4)
        assert without_default.highest_priority_match(miss_packet) is None

    def test_all_matches_sorted_by_priority(self, handcrafted_ruleset, web_packet):
        matches = [rule.rule_id for rule in handcrafted_ruleset.all_matches(web_packet)]
        assert matches == [0, 1, 3, 4]

    def test_subset(self, handcrafted_ruleset):
        subset = handcrafted_ruleset.subset(2)
        assert len(subset) == 2
        assert subset.rule_ids() == [0, 1]

    def test_subset_negative_raises(self, handcrafted_ruleset):
        with pytest.raises(RuleSetError):
            handcrafted_ruleset.subset(-1)

    def test_filter(self, handcrafted_ruleset):
        tcp_only = handcrafted_ruleset.filter(lambda rule: not rule.protocol.wildcard and rule.protocol.value == 6)
        assert {rule.rule_id for rule in tcp_only} == {0, 1, 3}

    def test_unique_field_values(self, handcrafted_ruleset):
        assert handcrafted_ruleset.unique_field_values("src_port") == 1
        assert handcrafted_ruleset.unique_field_values("protocol") == 3
        with pytest.raises(RuleSetError):
            handcrafted_ruleset.unique_field_values("vlan")

    def test_stats(self, handcrafted_ruleset):
        stats = handcrafted_ruleset.stats()
        assert stats.size == 5
        assert stats.unique_field_counts["dst_port"] == 4
        assert stats.wildcard_field_counts["src_port"] == 5
        assert stats.exact_port_counts["dst_port"] == 2
        assert stats.average_specificity > 0

    def test_renumbered_preserves_order(self, handcrafted_ruleset):
        shuffled = RuleSet(
            [rule.with_priority(priority) for rule, priority in zip(handcrafted_ruleset, (10, 30, 20, 50, 40))],
            name="shuffled",
        )
        renumbered = shuffled.renumbered()
        assert [rule.priority for rule in renumbered.rules()] == [0, 1, 2, 3, 4]

    def test_len_iter_repr(self, handcrafted_ruleset):
        assert len(handcrafted_ruleset) == 5
        assert len(list(iter(handcrafted_ruleset))) == 5
        assert "handcrafted" in repr(handcrafted_ruleset)

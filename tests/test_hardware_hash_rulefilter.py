"""Unit tests for the label-key layout, the hash unit and the Rule Filter memory."""

from __future__ import annotations

import pytest

from repro.exceptions import CapacityError, ConfigurationError
from repro.hardware.hash_unit import DEFAULT_LABEL_LAYOUT, HashUnit, LabelKeyLayout
from repro.hardware.rule_filter import RuleFilterMemory
from repro.rules.rule import Rule


class TestLabelKeyLayout:
    def test_paper_layout_is_68_bits(self):
        assert DEFAULT_LABEL_LAYOUT.total_bits == 68

    def test_field_widths_order(self):
        assert DEFAULT_LABEL_LAYOUT.field_widths() == (13, 13, 13, 13, 7, 7, 2)

    def test_pack_unpack_round_trip(self):
        labels = (1, 8191, 42, 0, 127, 3, 2)
        packed = DEFAULT_LABEL_LAYOUT.pack(labels)
        assert DEFAULT_LABEL_LAYOUT.unpack(packed) == labels
        assert packed < (1 << 68)

    def test_distinct_tuples_distinct_keys(self):
        a = DEFAULT_LABEL_LAYOUT.pack((1, 2, 3, 4, 5, 6, 1))
        b = DEFAULT_LABEL_LAYOUT.pack((1, 2, 3, 4, 5, 7, 1))
        assert a != b

    def test_pack_rejects_wrong_arity(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_LABEL_LAYOUT.pack((1, 2, 3))

    def test_pack_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_LABEL_LAYOUT.pack((1 << 13, 0, 0, 0, 0, 0, 0))
        with pytest.raises(ConfigurationError):
            DEFAULT_LABEL_LAYOUT.pack((0, 0, 0, 0, 0, 0, 4))

    def test_custom_layout(self):
        layout = LabelKeyLayout(ip_label_bits=8, port_label_bits=4, protocol_label_bits=2)
        assert layout.total_bits == 4 * 8 + 2 * 4 + 2


class TestHashUnit:
    def test_table_size(self):
        assert HashUnit(table_bits=14).table_size == 16384

    def test_hash_in_range_and_deterministic(self):
        unit = HashUnit(table_bits=10)
        for key in (0, 1, 12345, (1 << 68) - 1):
            slot = unit.hash(key)
            assert 0 <= slot < unit.table_size
            assert slot == unit.hash(key)

    def test_high_bits_matter(self):
        unit = HashUnit(table_bits=12)
        low = unit.hash(5)
        high = unit.hash(5 | (1 << 67))
        assert low != high or unit.hash(7) != unit.hash(7 | (1 << 67))

    def test_distribution_is_reasonable(self):
        unit = HashUnit(table_bits=8)
        slots = {unit.hash(key) for key in range(2000)}
        # At least half of the 256 slots are touched by 2000 sequential keys.
        assert len(slots) > 128

    def test_negative_key_rejected(self):
        with pytest.raises(ConfigurationError):
            HashUnit().hash(-1)

    def test_probe_sequence_is_lazy_and_wraps(self):
        unit = HashUnit(table_bits=4)
        sequence = unit.probe_sequence(123, limit=20)
        slots = list(sequence)
        assert len(slots) == 20
        assert all(0 <= slot < 16 for slot in slots)
        # consecutive probes advance by one slot modulo the table size
        assert slots[1] == (slots[0] + 1) % 16

    def test_probe_sequence_invalid_limit(self):
        with pytest.raises(ConfigurationError):
            list(HashUnit().probe_sequence(1, 0))

    def test_invalid_table_bits(self):
        with pytest.raises(ConfigurationError):
            HashUnit(table_bits=0)


class TestRuleFilterMemory:
    def _key(self, seed: int) -> int:
        return DEFAULT_LABEL_LAYOUT.pack((seed % 8192, 1, 2, 3, seed % 128, 5, seed % 4))

    def test_insert_and_lookup(self):
        memory = RuleFilterMemory(capacity=64)
        rule = Rule.build(7, 3)
        slot, accesses = memory.insert(self._key(1), rule)
        assert accesses >= 2
        found = memory.lookup(self._key(1))
        assert found.entry is not None
        assert found.entry.rule_id == 7
        assert found.entry.priority == 3

    def test_lookup_miss(self):
        memory = RuleFilterMemory(capacity=64)
        result = memory.lookup(self._key(9))
        assert result.entry is None
        assert result.probes >= 1

    def test_duplicate_key_keeps_best_priority(self):
        memory = RuleFilterMemory(capacity=64)
        memory.insert(self._key(2), Rule.build(1, 10))
        memory.insert(self._key(2), Rule.build(2, 4))
        assert memory.lookup(self._key(2)).entry.rule_id == 2

    def test_delete_and_chain_repair(self):
        memory = RuleFilterMemory(capacity=64)
        keys = [self._key(i) for i in range(20)]
        for index, key in enumerate(keys):
            memory.insert(key, Rule.build(index, index))
        deleted, _ = memory.delete(keys[5], rule_id=5)
        assert deleted
        assert memory.lookup(keys[5]).entry is None
        # every other rule must still be reachable after the chain repair
        for index, key in enumerate(keys):
            if index == 5:
                continue
            assert memory.lookup(key).entry.rule_id == index

    def test_delete_missing_returns_false(self):
        memory = RuleFilterMemory(capacity=16)
        deleted, accesses = memory.delete(self._key(3), rule_id=1)
        assert not deleted and accesses >= 1

    def test_capacity_enforced(self):
        memory = RuleFilterMemory(capacity=4)
        for index in range(4):
            memory.insert(self._key(index), Rule.build(index, index))
        with pytest.raises(CapacityError):
            memory.insert(self._key(99), Rule.build(99, 99))

    def test_stored_rules_and_entries(self):
        memory = RuleFilterMemory(capacity=16)
        for index in range(5):
            memory.insert(self._key(index), Rule.build(index, index))
        assert memory.stored_rules == 5
        assert len(memory.entries()) == 5
        memory.delete(self._key(0), 0)
        assert memory.stored_rules == 4

    def test_total_bits_and_counters(self):
        memory = RuleFilterMemory(capacity=128)
        assert memory.total_bits == memory.memory.depth * RuleFilterMemory.WORD_WIDTH
        memory.insert(self._key(1), Rule.build(0, 0))
        assert memory.memory.counter.total > 0
        memory.reset_counters()
        assert memory.memory.counter.total == 0

    def test_invalid_capacity(self):
        with pytest.raises(Exception):
            RuleFilterMemory(capacity=0)

    def test_collisions_resolved_by_probing(self):
        # Force collisions with a tiny table: every rule must stay reachable.
        memory = RuleFilterMemory(capacity=8, hash_unit=HashUnit(table_bits=3))
        for index in range(8):
            memory.insert(self._key(index), Rule.build(index, index))
        for index in range(8):
            assert memory.lookup(self._key(index)).entry.rule_id == index

"""Differential scenario battery: every lookup path against every other.

The repo now ships seven ways to classify the same trace — per-packet, fast
path, vectorized fast path, thread pool, process pool over the pickle and
packed transports, and the asyncio front-end — each claiming bit-exactness.
Instead of per-PR spot checks, this battery sweeps seeded-random scenarios
(ClassBench flavor x combiner mode x trace shape, including the adversarial
all-unique-flows and heavy-duplicate shapes) and asserts that **all** paths
return identical classifications, with the linear-search scan as ground
truth wherever the combiner is exact (cross-product mode).

Scenario workloads come from the shared generator in ``tests/conftest.py``
(:func:`build_scenario_trace` / the ``differential_scenario`` fixture),
seeded by ``REPRO_DIFF_SEED`` (default 20140730) so any CI failure is
reproducible by exporting the seed echoed in the job log.

Everything here is marked ``differential`` so CI can run the battery as its
own job; it is also part of the default (tier-1) suite.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional

import pytest

from repro.api import create_classifier
from repro.api.control import Txn
from repro.core.config import CombinerMode
from repro.perf import ParallelSession, ReplicaSpec, shared_memory_available
from repro.rules.ruleset import RuleSet

from diff_scenarios import (
    DIFFERENTIAL_SEED,
    TRACE_SHAPES,
    build_fabric_topology,
    build_fabric_trace,
    build_mutation_schedule,
)

pytestmark = pytest.mark.differential

FLAVORS = ("acl", "fw", "ipc")
COMBINERS = tuple(mode.value for mode in CombinerMode)

#: The full in-process battery: 3 flavors x 2 combiners x 3 shapes.
SCENARIOS = [
    (flavor, combiner, shape)
    for flavor in FLAVORS
    for combiner in COMBINERS
    for shape in TRACE_SHAPES
]

#: Process pools fork a worker pair per session, so the cross-process paths
#: sweep a representative diagonal instead of the full cube: every flavor,
#: both combiners and every trace shape appear at least once.
PROCESS_SCENARIOS = [
    ("acl", "cross_product", "mixed"),
    ("fw", "cross_product", "all_unique"),
    ("ipc", "cross_product", "heavy_duplicate"),
    ("acl", "first_label", "all_unique"),
]

ASYNC_SCENARIOS = [
    ("acl", "cross_product", "mixed"),
    ("fw", "first_label", "heavy_duplicate"),
]


@dataclass
class ScenarioReference:
    """Everything one scenario's comparisons need, built once and cached."""

    ruleset: RuleSet
    trace: list
    #: Ground truth rule ids from the linear scan (exact resolution).
    truth: List[Optional[int]]
    #: Per-packet path classifications (the behavioural model's reference).
    per_packet: list
    #: Fast-path batch classifications (what every other path must equal).
    fast: list
    options: dict = field(default_factory=dict)


@pytest.fixture(scope="module")
def scenario_reference(differential_scenario):
    """Cached per-scenario reference results shared across the battery."""
    cache = {}

    def build(flavor: str, combiner: str, shape: str) -> ScenarioReference:
        key = (flavor, combiner, shape)
        if key not in cache:
            ruleset, trace = differential_scenario(flavor, shape)
            options = {"combiner": combiner}
            base = create_classifier("configurable", ruleset, **options)
            per_packet = [base.classify(packet) for packet in trace]
            fast = create_classifier("configurable", ruleset, fast=True, **options)
            fast_results = list(fast.classify_batch(trace).results)
            truth = [
                match.rule_id if (match := ruleset.highest_priority_match(p)) else None
                for p in trace
            ]
            cache[key] = ScenarioReference(
                ruleset=ruleset,
                trace=trace,
                truth=truth,
                per_packet=per_packet,
                fast=fast_results,
                options=options,
            )
        return cache[key]

    return build


def _scenario_id(scenario) -> str:
    return "-".join(scenario)


@pytest.fixture(scope="session", autouse=True)
def echo_differential_seed():
    """Echo the battery seed so any failure is reproducible from the log."""
    print(f"\n[differential battery] REPRO_DIFF_SEED={DIFFERENTIAL_SEED}")


@pytest.mark.parametrize("scenario", SCENARIOS, ids=_scenario_id)
def test_inprocess_paths_agree(scenario, scenario_reference):
    """per-packet == fast == vectorized == thread pool (== linear truth)."""
    flavor, combiner, shape = scenario
    ref = scenario_reference(flavor, combiner, shape)

    # Fast path against the per-packet behavioural model: bit-exact.
    assert ref.fast == ref.per_packet

    # Vectorized cold path: a separate classifier so its caches start cold.
    vectorized = create_classifier(
        "configurable", ref.ruleset, vectorized=True, **ref.options
    )
    assert list(vectorized.classify_batch(ref.trace).results) == ref.per_packet

    # Thread-pool sharding over heterogeneous (fast + vectorized) replicas:
    # input-order reassembly must reproduce the single-replica batch.
    fast_replica = create_classifier(
        "configurable", ref.ruleset, fast=True, **ref.options
    )
    with ParallelSession([fast_replica, vectorized], chunk_size=32) as pool:
        fed = pool.feed(ref.trace)
    assert list(fed.results) == ref.per_packet

    if combiner == CombinerMode.CROSS_PRODUCT.value:
        # Cross-product resolution is exact, so the linear scan agrees
        # (first-label is the paper's approximate hardware fast path).
        assert [result.rule_id for result in ref.per_packet] == ref.truth
        assert not any(result.truncated for result in ref.per_packet)


@pytest.mark.parametrize("transport", ["pickle", "packed"])
@pytest.mark.parametrize("scenario", PROCESS_SCENARIOS, ids=_scenario_id)
def test_process_pool_transports_agree(scenario, transport, scenario_reference):
    """Process-pool results are bit-exact over both chunk transports."""
    if transport == "packed" and not shared_memory_available():
        pytest.skip("platform grants no shared memory segments")
    flavor, combiner, shape = scenario
    ref = scenario_reference(flavor, combiner, shape)
    spec = ReplicaSpec(
        "configurable", ref.ruleset, {"fast": True, **ref.options}
    )
    with ParallelSession.from_factory(
        spec, workers=2, chunk_size=32, backend="process", transport=transport
    ) as pool:
        assert pool.transport == transport
        fed = pool.feed(ref.trace)
        stats = pool.stats()
    assert list(fed.results) == ref.fast
    assert stats.packets == len(ref.trace)
    assert stats.matched == sum(1 for r in ref.fast if r.matched)


# ---------------------------------------------------------------------------
# Mutation-interleaved battery: update-under-load on every execution path.
# ---------------------------------------------------------------------------

#: Chunk size of the mutation replay (transactions commit between chunks).
MUTATION_CHUNK = 32

#: Every execution path the schedule replays against.  The process paths fork
#: a two-worker pool per run, so they sweep the same single scenario as the
#: in-process paths rather than a larger grid.
MUTATION_PATHS = [
    "per_packet",
    "fast",
    "vectorized",
    "thread",
    "process-pickle",
    "process-packed",
]


def _schedule_delta(ops) -> "Txn":
    """Stage one boundary's schedule ops as a control-plane delta."""
    txn = Txn()
    for kind, payload in ops:
        if kind == "insert":
            txn.insert(payload)
        elif kind == "remove":
            txn.remove(payload)
        else:
            txn.reconfigure(ip_algorithm=payload)
    return txn.delta()


def _build_mutation_workload(differential_scenario, shape: str, seed: int):
    """One mutation workload: chunks, schedule, oracle and reference.

    The linear-search oracle replays the identical schedule over a plain
    rule dict; the per-packet reference replays it through the control plane
    of a cache-free classifier.  Both are computed once and every execution
    path is asserted against them.
    """
    ruleset, trace = differential_scenario("acl", shape)
    chunks = [trace[i : i + MUTATION_CHUNK] for i in range(0, len(trace), MUTATION_CHUNK)]
    initial, schedule = build_mutation_schedule(
        ruleset, boundaries=len(chunks) - 1, seed=seed
    )
    initial_set = RuleSet(initial, name="mutation-initial")

    # Linear-search oracle, replayed with the same schedule.
    current = {rule.rule_id: rule for rule in initial}
    oracle: List[Optional[int]] = []
    for index, chunk in enumerate(chunks):
        ordered = sorted(current.values(), key=lambda rule: rule.priority)
        for packet in chunk:
            hit = next((rule for rule in ordered if rule.matches(packet)), None)
            oracle.append(hit.rule_id if hit else None)
        if index < len(schedule):
            for kind, payload in schedule[index]:
                if kind == "insert":
                    current[payload.rule_id] = payload
                elif kind == "remove":
                    del current[payload]

    # Per-packet behavioural reference (full Classification records).
    classifier = create_classifier("configurable", initial_set)
    reference = []
    for index, chunk in enumerate(chunks):
        reference.extend(classifier.classify(packet) for packet in chunk)
        if index < len(schedule):
            classifier.control.begin().extend(_schedule_delta(schedule[index])).commit()
    assert [record.rule_id for record in reference] == oracle

    return initial_set, chunks, schedule, oracle, reference


@pytest.fixture(scope="module")
def mutation_scenario(differential_scenario):
    """The shared mutation workload over the biased ClassBench mix."""
    return _build_mutation_workload(
        differential_scenario, "mixed", DIFFERENTIAL_SEED + 9
    )


@pytest.fixture(scope="module")
def flowcache_mutation_scenario(differential_scenario):
    """Mutation workload over a zipf-churn trace, so the flow cache is hot
    (repeated flows) when each commit lands."""
    return _build_mutation_workload(
        differential_scenario, "zipf_churn", DIFFERENTIAL_SEED + 13
    )


def _replay_schedule(path: str, mutation_workload):
    """Replay the mutation schedule over one execution path, scoped as shipped.

    Returns ``(observed, classifiers)`` where ``classifiers`` holds the
    in-process classifier objects whose fast-path counters can be inspected
    afterwards (empty for process pools, whose replicas live in forked
    workers).
    """
    initial_set, chunks, schedule, _, _ = mutation_workload
    observed = []
    classifiers = []
    if path in ("per_packet", "fast", "vectorized"):
        options = {"fast": path == "fast", "vectorized": path == "vectorized"}
        classifier = create_classifier("configurable", initial_set, **options)
        classifiers.append(classifier)
        for index, chunk in enumerate(chunks):
            observed.extend(classifier.classify_batch(chunk).results)
            if index < len(schedule):
                classifier.control.begin().extend(
                    _schedule_delta(schedule[index])
                ).commit()
    else:
        if path == "thread":
            # Heterogeneous replicas: the broadcast must keep a plain fast
            # replica and a vectorized one in lock-step.
            replicas = [
                create_classifier("configurable", initial_set, fast=True),
                create_classifier("configurable", initial_set, vectorized=True),
            ]
            classifiers.extend(replicas)
            session = ParallelSession(replicas, chunk_size=8)
        else:
            transport = path.split("-", 1)[1]
            spec = ReplicaSpec("configurable", initial_set, {"fast": True})
            session = ParallelSession.from_factory(
                spec, workers=2, chunk_size=8, backend="process", transport=transport
            )
        with session:
            for index, chunk in enumerate(chunks):
                observed.extend(session.feed(chunk).results)
                if index < len(schedule):
                    session.apply(_schedule_delta(schedule[index]))
    return observed, classifiers


@pytest.fixture(scope="module")
def scoped_replays(mutation_scenario):
    """Each execution path replayed once, shared by the mutation tests."""
    cache = {}

    def run(path: str):
        if path not in cache:
            cache[path] = _replay_schedule(path, mutation_scenario)
        return cache[path]

    return run


@pytest.fixture(scope="module")
def wholesale_mutation_reference(mutation_scenario):
    """Fast-path replay with every commit escalated to a full cache flush.

    This is the pre-scoped-invalidation behaviour: after each committed
    delta, drop *all* memoized fast-path state instead of only the entries
    inside the delta's blast radius.  Scoped invalidation must be
    behaviourally invisible, so this replay is the second oracle the scoped
    replays are diffed against.
    """
    initial_set, chunks, schedule, oracle, reference = mutation_scenario
    classifier = create_classifier("configurable", initial_set, fast=True)
    fast_path = classifier._fast_path
    observed = []
    for index, chunk in enumerate(chunks):
        observed.extend(classifier.classify_batch(chunk).results)
        if index < len(schedule):
            classifier.control.begin().extend(
                _schedule_delta(schedule[index])
            ).commit()
            fast_path.invalidate()  # force the wholesale epoch flush
    assert [record.rule_id for record in observed] == oracle
    assert list(observed) == list(reference)
    return observed


@pytest.mark.mutation
@pytest.mark.parametrize("path", MUTATION_PATHS)
def test_mutation_interleaved_paths_agree(path, mutation_scenario, scoped_replays):
    """Every path under the same update schedule matches the linear oracle."""
    initial_set, chunks, schedule, oracle, reference = mutation_scenario
    if path == "process-packed" and not shared_memory_available():
        pytest.skip("platform grants no shared memory segments")

    observed, _ = scoped_replays(path)
    assert [record.rule_id for record in observed] == oracle
    # Full-record equivalence with the per-packet reference (equality spans
    # accesses, latency, probes and truncation; `detail` is excluded, which
    # is exactly what the compact process-backend wire form strips).
    assert list(observed) == list(reference)


@pytest.mark.mutation
@pytest.mark.parametrize("path", MUTATION_PATHS)
def test_mutation_scoped_invalidation_matches_wholesale_flush(
    path, scoped_replays, wholesale_mutation_reference
):
    """Dependency-scoped invalidation is bit-exact against forced full flushes.

    The same schedule replayed with partial (blast-radius) invalidation and
    with every commit escalated to a wholesale flush must produce identical
    full records — and the scoped replay must have actually exercised the
    scoped drop path rather than silently falling back to flushing.
    """
    if path == "process-packed" and not shared_memory_available():
        pytest.skip("platform grants no shared memory segments")
    observed, classifiers = scoped_replays(path)
    assert list(observed) == list(wholesale_mutation_reference)
    for classifier in classifiers:
        fast_path = classifier._fast_path
        if fast_path is not None:
            assert fast_path.cache_stats()["scoped_commits"] > 0


@pytest.mark.mutation
def test_mutation_failed_delta_rolls_back_session_wide(mutation_scenario):
    """A replica rejecting a delta leaves the whole pool uncommitted."""
    from repro.exceptions import UpdateError

    initial_set, chunks, schedule, oracle, reference = mutation_scenario
    replicas = [
        create_classifier("configurable", initial_set, fast=True),
        create_classifier("configurable", initial_set, fast=True),
    ]
    victim = initial_set.rules()[0]
    with ParallelSession(replicas, chunk_size=8) as session:
        before = session.feed(chunks[0]).results
        # Make replica 1 divergent behind the session's back, then broadcast
        # a delta only replica 0 can apply.
        replicas[1].control.begin().remove(victim.rule_id).commit()
        with pytest.raises(UpdateError, match="rolled back"):
            session.apply(Txn().remove(victim.rule_id))
        # Replica 0 rolled its copy back: the rule is still installed there.
        assert victim.rule_id in {
            rule.rule_id for rule in replicas[0].control.program().rules
        }
        # Restore replica 1 and verify the pool still serves identically.
        replicas[1].control.begin().insert(victim).commit()
        assert session.feed(chunks[0]).results == before


# ---------------------------------------------------------------------------
# Flow-cache column: every execution path again, with the exact-match flow
# cache fronting the classifier.  Tight capacities and timeouts force hits,
# idle/hard/hybrid expirations and capacity evictions mid-trace, and the
# chunked replay makes the virtual clock advance across batch boundaries.
# ---------------------------------------------------------------------------

#: Cache geometry chosen to guarantee eviction pressure on battery traces:
#: the churn shapes carry well over 8 distinct flows for any seed.
FLOWCACHE_OPTIONS = {"flow_capacity": 8, "flow_idle_timeout": 48, "flow_hard_timeout": 96}

FLOWCACHE_POLICIES = ("idle", "hard", "hybrid")

FLOWCACHE_SCENARIOS = [
    ("acl", "cross_product", "zipf_churn"),
    ("fw", "cross_product", "heavy_duplicate"),
    ("ipc", "cross_product", "zipf_churn"),
    ("acl", "first_label", "zipf_churn"),
    ("fw", "first_label", "heavy_duplicate"),
]

FLOWCACHE_CHUNK = 40


def _flow_options(policy: str) -> dict:
    return {"flow_cache": True, "flow_policy": policy, **FLOWCACHE_OPTIONS}


@pytest.mark.flowcache
@pytest.mark.parametrize("policy", FLOWCACHE_POLICIES)
@pytest.mark.parametrize("scenario", FLOWCACHE_SCENARIOS, ids=_scenario_id)
def test_flowcache_inprocess_paths_agree(scenario, policy, scenario_reference):
    """Flow-cached fast/vectorized/per-packet paths replay bit-exact records."""
    flavor, combiner, shape = scenario
    ref = scenario_reference(flavor, combiner, shape)
    chunks = [
        ref.trace[i : i + FLOWCACHE_CHUNK]
        for i in range(0, len(ref.trace), FLOWCACHE_CHUNK)
    ]
    for path_options in ({}, {"fast": True}, {"vectorized": True}):
        classifier = create_classifier(
            "configurable", ref.ruleset,
            **path_options, **_flow_options(policy), **ref.options,
        )
        observed = []
        for chunk in chunks:
            observed.extend(classifier.classify_batch(chunk).results)
        assert list(observed) == ref.per_packet
        cache = classifier.flow_cache
        assert cache.hits > 0  # the cache actually served traffic
        if shape == "zipf_churn":
            # More distinct flows than capacity: real eviction pressure.
            assert cache.timeout_evictions + cache.capacity_evictions > 0
        if combiner == CombinerMode.CROSS_PRODUCT.value:
            assert [record.rule_id for record in observed] == ref.truth


@pytest.mark.flowcache
def test_flowcache_thread_pool_agrees(scenario_reference):
    """Heterogeneous thread replicas, each with a private flow cache."""
    ref = scenario_reference("acl", "cross_product", "zipf_churn")
    replicas = [
        create_classifier(
            "configurable", ref.ruleset, fast=True, **_flow_options("idle")
        ),
        create_classifier(
            "configurable", ref.ruleset, vectorized=True, **_flow_options("hybrid")
        ),
    ]
    with ParallelSession(replicas, chunk_size=32) as pool:
        fed = pool.feed(ref.trace)
        merged = pool.flow_cache_stats()
    assert list(fed.results) == ref.per_packet
    assert merged is not None and merged["replicas"] == 2
    assert merged["lookups"] == len(ref.trace)


@pytest.mark.flowcache
@pytest.mark.parametrize("transport", ["pickle", "packed"])
def test_flowcache_process_pool_agrees(transport, scenario_reference):
    """Flow caches inside forked workers stay bit-exact over both transports."""
    if transport == "packed" and not shared_memory_available():
        pytest.skip("platform grants no shared memory segments")
    ref = scenario_reference("acl", "cross_product", "zipf_churn")
    spec = ReplicaSpec(
        "configurable", ref.ruleset, {"fast": True, **_flow_options("idle"), **ref.options}
    )
    with ParallelSession.from_factory(
        spec, workers=2, chunk_size=32, backend="process", transport=transport
    ) as pool:
        fed = pool.feed(ref.trace)
        merged = pool.flow_cache_stats()
    assert list(fed.results) == ref.per_packet
    assert merged is not None and merged["lookups"] == len(ref.trace)
    assert merged["hits"] > 0


@pytest.mark.flowcache
def test_flowcache_async_feed_agrees(scenario_reference):
    """The asyncio front-end over flow-cached replicas keeps input order."""
    ref = scenario_reference("fw", "cross_product", "heavy_duplicate")

    async def drive():
        async def live_source():
            for packet in ref.trace:
                yield packet

        replicas = [
            create_classifier(
                "configurable", ref.ruleset, fast=True,
                **_flow_options("hybrid"), **ref.options,
            )
            for _ in range(2)
        ]
        with ParallelSession(replicas, chunk_size=32) as pool:
            return [result async for result in pool.afeed(live_source())]

    assert asyncio.run(drive()) == ref.per_packet


@pytest.mark.flowcache
@pytest.mark.parametrize("path", MUTATION_PATHS)
def test_flowcache_mutation_interleaved_paths_agree(path, flowcache_mutation_scenario):
    """The mutation schedule with the flow cache on: commits must invalidate
    exactly enough for every path to keep matching the linear oracle."""
    initial_set, chunks, schedule, oracle, reference = flowcache_mutation_scenario
    if path == "process-packed" and not shared_memory_available():
        pytest.skip("platform grants no shared memory segments")
    flow = _flow_options("idle")

    observed = []
    if path in ("per_packet", "fast", "vectorized"):
        options = {"fast": path == "fast", "vectorized": path == "vectorized"}
        classifier = create_classifier("configurable", initial_set, **options, **flow)
        for index, chunk in enumerate(chunks):
            observed.extend(classifier.classify_batch(chunk).results)
            if index < len(schedule):
                classifier.control.begin().extend(
                    _schedule_delta(schedule[index])
                ).commit()
        cache = classifier.flow_cache
        # The zipf trace repeats flows, so the cache was hot when commits
        # landed; whether a given commit touches a cached decision is
        # seed-dependent, so the invalidation *behaviours* are pinned by the
        # deterministic unit battery instead of asserted here.
        assert cache.hits > 0
    else:
        if path == "thread":
            replicas = [
                create_classifier("configurable", initial_set, fast=True, **flow),
                create_classifier("configurable", initial_set, vectorized=True, **flow),
            ]
            session = ParallelSession(replicas, chunk_size=8)
        else:
            transport = path.split("-", 1)[1]
            spec = ReplicaSpec("configurable", initial_set, {"fast": True, **flow})
            session = ParallelSession.from_factory(
                spec, workers=2, chunk_size=8, backend="process", transport=transport
            )
        with session:
            for index, chunk in enumerate(chunks):
                observed.extend(session.feed(chunk).results)
                if index < len(schedule):
                    session.apply(_schedule_delta(schedule[index]))

    assert [record.rule_id for record in observed] == oracle
    # Decisions (rule, priority, action, truncation) are bit-exact against
    # the cache-free reference.  Cost metadata is deliberately excluded: a
    # surgically-kept entry replays its installation-time access/latency
    # counts, while a fresh classification recounts them against the
    # post-commit engine — the whole point of the cache is not recomputing.
    def semantic(record):
        return (record.rule_id, record.priority, record.action, record.truncated)

    assert [semantic(r) for r in observed] == [semantic(r) for r in reference]


# ---------------------------------------------------------------------------
# Fabric column: the partitioned multi-switch fabric against the single-switch
# linear oracle, across every in-process backend.  Placement splits the rule
# program across switches, so the battery's claim is strong: the *distributed*
# lookup (best per-hop match along each packet's routed path) is semantically
# identical to one switch holding the whole program.
# ---------------------------------------------------------------------------

from repro.controller.fabric import FabricController  # noqa: E402

#: flavor x topology shape x switch count; every backend replays each one.
FABRIC_SCENARIOS = [
    ("acl", "line", 4),
    ("fw", "line", 6),
    ("ipc", "fattree", 7),
]

FABRIC_BACKENDS = ("per_packet", "fast", "vectorized")

FABRIC_PACKETS = 240


def _fabric_id(scenario) -> str:
    flavor, kind, switches = scenario
    return f"{flavor}-{kind}{switches}"


def _fabric_backend_options(backend: str) -> dict:
    return {"fast": backend == "fast", "vectorized": backend == "vectorized"}


def _fabric_semantic(record):
    """The fabric-wide decision: cost counters are per-hop and excluded."""
    return (record.rule_id, record.priority, record.action, record.truncated)


@pytest.fixture(scope="module")
def fabric_reference(differential_scenario):
    """Per-scenario fabric workload + single-switch oracle, built once."""
    cache = {}

    def build(flavor: str, kind: str, switches: int):
        key = (flavor, kind, switches)
        if key not in cache:
            ruleset, _ = differential_scenario(flavor, "mixed")
            topology = build_fabric_topology(kind, switches)
            trace = build_fabric_trace(
                ruleset, topology, FABRIC_PACKETS, DIFFERENTIAL_SEED + 17
            )
            truth = [
                match.rule_id
                if (match := ruleset.highest_priority_match(p.header))
                else None
                for p in trace
            ]
            oracle = create_classifier("configurable", ruleset)
            reference = [
                _fabric_semantic(oracle.classify(packet.header)) for packet in trace
            ]
            cache[key] = (ruleset, topology, trace, truth, reference)
        return cache[key]

    return build


@pytest.mark.fabric
@pytest.mark.parametrize("backend", FABRIC_BACKENDS)
@pytest.mark.parametrize("scenario", FABRIC_SCENARIOS, ids=_fabric_id)
def test_fabric_matches_single_switch_oracle(scenario, backend, fabric_reference):
    """Placed fabric == full-program single switch, on every backend."""
    flavor, kind, switches = scenario
    ruleset, topology, trace, truth, reference = fabric_reference(flavor, kind, switches)
    fabric = FabricController(topology, **_fabric_backend_options(backend))
    fabric.install(ruleset)

    # The program really is partitioned, not replicated per switch.
    if topology.min_path_length > 1:
        assert fabric.plan.max_switch_rules < len(ruleset)
        assert fabric.plan.replication_factor < len(topology.switches)

    result = fabric.serve(trace)
    assert [r.rule_id for r in result.results] == truth
    assert [_fabric_semantic(r) for r in result.results] == reference

    # Per-switch accounting adds up to exactly one lookup per path hop.
    assert result.hop_lookups == sum(
        len(topology.route_path(p.ingress)) for p in trace
    )
    assert result.hop_lookups == sum(s.packets for s in result.per_switch.values())
    assert result.session.packets == result.hop_lookups
    assert result.matched == sum(1 for rid in truth if rid is not None)
    assert fabric.partial_commits == 0


@pytest.mark.fabric
@pytest.mark.parametrize("scenario", FABRIC_SCENARIOS, ids=_fabric_id)
def test_fabric_backends_agree(scenario, fabric_reference):
    """All three fabric backends produce identical fabric-wide decisions."""
    flavor, kind, switches = scenario
    ruleset, topology, trace, _, _ = fabric_reference(flavor, kind, switches)
    decisions = []
    for backend in FABRIC_BACKENDS:
        fabric = FabricController(topology, **_fabric_backend_options(backend))
        fabric.install(ruleset)
        result = fabric.serve(trace)
        decisions.append([_fabric_semantic(r) for r in result.results])
    assert decisions[0] == decisions[1] == decisions[2]


@pytest.mark.fabric
@pytest.mark.mutation
def test_fabric_mutation_interleaved_matches_oracle(differential_scenario):
    """The mutation schedule replayed fabric-wide stays on the linear oracle.

    Every commit re-plans placement and converges the switches
    transactionally; between commits the fabric must serve exactly what a
    single switch replaying the same schedule would.
    """
    ruleset, _ = differential_scenario("acl", "mixed")
    topology = build_fabric_topology("line", 4)
    trace = build_fabric_trace(ruleset, topology, FABRIC_PACKETS, DIFFERENTIAL_SEED + 23)
    chunks = [
        trace[i : i + MUTATION_CHUNK] for i in range(0, len(trace), MUTATION_CHUNK)
    ]
    initial, schedule = build_mutation_schedule(
        ruleset, boundaries=len(chunks) - 1, seed=DIFFERENTIAL_SEED + 29
    )

    # Linear-search oracle over the identical schedule.
    current = {rule.rule_id: rule for rule in initial}
    oracle: List[Optional[int]] = []
    for index, chunk in enumerate(chunks):
        ordered = sorted(current.values(), key=lambda rule: rule.priority)
        for packet in chunk:
            hit = next((rule for rule in ordered if rule.matches(packet.header)), None)
            oracle.append(hit.rule_id if hit else None)
        if index < len(schedule):
            for kind, payload in schedule[index]:
                if kind == "insert":
                    current[payload.rule_id] = payload
                elif kind == "remove":
                    del current[payload]

    fabric = FabricController(topology, fast=True)
    fabric.install(RuleSet(initial, name="fabric-mutation-initial"))
    observed: List[Optional[int]] = []
    for index, chunk in enumerate(chunks):
        result = fabric.serve(chunk)
        observed.extend(record.rule_id for record in result.results)
        if index < len(schedule):
            fabric.begin().extend(_schedule_delta(schedule[index])).commit()
    assert observed == oracle
    assert fabric.commits == 1 + len(schedule)
    assert fabric.rolled_back_commits == 0
    assert fabric.partial_commits == 0


# ---------------------------------------------------------------------------
# Ingest column: the pcap interchange inside the differential loop.  Each
# scenario's seeded synthetic trace is rendered to a capture file, re-read
# through the streaming front-end, and the replayed workload must classify
# bit-exactly on every execution path — so the interchange layer provably
# neither drops, reorders nor perturbs a single header bit.
# ---------------------------------------------------------------------------

from repro.io.pcap import (  # noqa: E402
    PcapStats,
    read_pcap,
    read_pcap_packed,
    write_pcap,
)

INGEST_SCENARIOS = [
    ("acl", "cross_product", "mixed"),
    ("fw", "cross_product", "heavy_duplicate"),
    ("ipc", "first_label", "all_unique"),
]


@pytest.fixture(scope="module")
def ingest_capture(scenario_reference, tmp_path_factory):
    """Per-scenario capture file written once from the scenario trace."""
    directory = tmp_path_factory.mktemp("ingest")
    cache = {}

    def build(flavor: str, combiner: str, shape: str):
        key = (flavor, combiner, shape)
        if key not in cache:
            ref = scenario_reference(flavor, combiner, shape)
            path = directory / f"{flavor}-{combiner}-{shape}.pcap"
            write_pcap(str(path), ref.trace, seed=DIFFERENTIAL_SEED)
            cache[key] = (ref, str(path))
        return cache[key]

    return build


@pytest.mark.ingest
@pytest.mark.parametrize("scenario", INGEST_SCENARIOS, ids=_scenario_id)
def test_ingest_roundtrip_inprocess_paths_agree(scenario, ingest_capture):
    """capture-replayed trace == source trace, on every in-process path."""
    ref, path = ingest_capture(*scenario)
    stats = PcapStats()
    replayed = read_pcap(path, ports="word", stats=stats)
    # Bit-exact round trip: the capture is the trace.
    assert replayed == ref.trace
    assert (stats.packets, stats.skipped, stats.truncated) == (len(ref.trace), 0, 0)

    per_packet = create_classifier("configurable", ref.ruleset, **ref.options)
    assert [per_packet.classify(p) for p in replayed] == ref.per_packet
    for options in ({"fast": True}, {"vectorized": True}):
        classifier = create_classifier(
            "configurable", ref.ruleset, **options, **ref.options
        )
        assert list(classifier.classify_batch(replayed).results) == ref.per_packet


@pytest.mark.ingest
@pytest.mark.parametrize("scenario", INGEST_SCENARIOS, ids=_scenario_id)
def test_ingest_packed_chunks_feed_thread_pool(scenario, ingest_capture):
    """PackedChunk streams off the capture dispatch bit-exactly to a pool."""
    ref, path = ingest_capture(*scenario)
    replicas = [
        create_classifier("configurable", ref.ruleset, fast=True, **ref.options),
        create_classifier("configurable", ref.ruleset, vectorized=True, **ref.options),
    ]
    with ParallelSession(replicas, chunk_size=32) as pool:
        fed = pool.feed(read_pcap_packed(path, chunk_size=32, ports="word"))
    assert list(fed.results) == ref.per_packet


@pytest.mark.ingest
@pytest.mark.parametrize("transport", ["pickle", "packed"])
def test_ingest_packed_chunks_cross_process(transport, ingest_capture):
    """The capture's packed words survive both process transports verbatim."""
    if transport == "packed" and not shared_memory_available():
        pytest.skip("platform grants no shared memory segments")
    ref, path = ingest_capture("acl", "cross_product", "mixed")
    spec = ReplicaSpec("configurable", ref.ruleset, {"fast": True, **ref.options})
    with ParallelSession.from_factory(
        spec, workers=2, chunk_size=32, backend="process", transport=transport
    ) as pool:
        stats = pool.run(read_pcap_packed(path, chunk_size=32, ports="word"))
    assert stats.packets == len(ref.trace)
    assert stats.matched == sum(1 for r in ref.per_packet if r.matched)


@pytest.mark.ingest
def test_ingest_fabric_serves_capture_on_oracle(ingest_capture):
    """An untagged capture served fabric-wide stays on the linear oracle."""
    ref, path = ingest_capture("acl", "cross_product", "mixed")
    topology = build_fabric_topology("line", 4)
    fabric = FabricController(topology, fast=True)
    fabric.install(ref.ruleset)
    result = fabric.serve(read_pcap(path, ports="word"))
    assert [r.rule_id for r in result.results] == ref.truth


@pytest.mark.parametrize("scenario", ASYNC_SCENARIOS, ids=_scenario_id)
def test_async_feed_agrees(scenario, scenario_reference):
    """The asyncio front-end yields the same classifications, in input order."""
    flavor, combiner, shape = scenario
    ref = scenario_reference(flavor, combiner, shape)

    async def drive():
        async def live_source():
            for packet in ref.trace:
                yield packet

        replicas = [
            create_classifier("configurable", ref.ruleset, fast=True, **ref.options)
            for _ in range(2)
        ]
        with ParallelSession(replicas, chunk_size=32) as pool:
            return [result async for result in pool.afeed(live_source())]

    assert asyncio.run(drive()) == ref.fast

"""Differential scenario battery: every lookup path against every other.

The repo now ships seven ways to classify the same trace — per-packet, fast
path, vectorized fast path, thread pool, process pool over the pickle and
packed transports, and the asyncio front-end — each claiming bit-exactness.
Instead of per-PR spot checks, this battery sweeps seeded-random scenarios
(ClassBench flavor x combiner mode x trace shape, including the adversarial
all-unique-flows and heavy-duplicate shapes) and asserts that **all** paths
return identical classifications, with the linear-search scan as ground
truth wherever the combiner is exact (cross-product mode).

Scenario workloads come from the shared generator in ``tests/conftest.py``
(:func:`build_scenario_trace` / the ``differential_scenario`` fixture),
seeded by ``REPRO_DIFF_SEED`` (default 20140730) so any CI failure is
reproducible by exporting the seed echoed in the job log.

Everything here is marked ``differential`` so CI can run the battery as its
own job; it is also part of the default (tier-1) suite.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional

import pytest

from repro.api import create_classifier
from repro.core.config import CombinerMode
from repro.perf import ParallelSession, ReplicaSpec, shared_memory_available
from repro.rules.ruleset import RuleSet

from diff_scenarios import DIFFERENTIAL_SEED, TRACE_SHAPES

pytestmark = pytest.mark.differential

FLAVORS = ("acl", "fw", "ipc")
COMBINERS = tuple(mode.value for mode in CombinerMode)

#: The full in-process battery: 3 flavors x 2 combiners x 3 shapes.
SCENARIOS = [
    (flavor, combiner, shape)
    for flavor in FLAVORS
    for combiner in COMBINERS
    for shape in TRACE_SHAPES
]

#: Process pools fork a worker pair per session, so the cross-process paths
#: sweep a representative diagonal instead of the full cube: every flavor,
#: both combiners and every trace shape appear at least once.
PROCESS_SCENARIOS = [
    ("acl", "cross_product", "mixed"),
    ("fw", "cross_product", "all_unique"),
    ("ipc", "cross_product", "heavy_duplicate"),
    ("acl", "first_label", "all_unique"),
]

ASYNC_SCENARIOS = [
    ("acl", "cross_product", "mixed"),
    ("fw", "first_label", "heavy_duplicate"),
]


@dataclass
class ScenarioReference:
    """Everything one scenario's comparisons need, built once and cached."""

    ruleset: RuleSet
    trace: list
    #: Ground truth rule ids from the linear scan (exact resolution).
    truth: List[Optional[int]]
    #: Per-packet path classifications (the behavioural model's reference).
    per_packet: list
    #: Fast-path batch classifications (what every other path must equal).
    fast: list
    options: dict = field(default_factory=dict)


@pytest.fixture(scope="module")
def scenario_reference(differential_scenario):
    """Cached per-scenario reference results shared across the battery."""
    cache = {}

    def build(flavor: str, combiner: str, shape: str) -> ScenarioReference:
        key = (flavor, combiner, shape)
        if key not in cache:
            ruleset, trace = differential_scenario(flavor, shape)
            options = {"combiner": combiner}
            base = create_classifier("configurable", ruleset, **options)
            per_packet = [base.classify(packet) for packet in trace]
            fast = create_classifier("configurable", ruleset, fast=True, **options)
            fast_results = list(fast.classify_batch(trace).results)
            truth = [
                match.rule_id if (match := ruleset.highest_priority_match(p)) else None
                for p in trace
            ]
            cache[key] = ScenarioReference(
                ruleset=ruleset,
                trace=trace,
                truth=truth,
                per_packet=per_packet,
                fast=fast_results,
                options=options,
            )
        return cache[key]

    return build


def _scenario_id(scenario) -> str:
    return "-".join(scenario)


@pytest.fixture(scope="session", autouse=True)
def echo_differential_seed():
    """Echo the battery seed so any failure is reproducible from the log."""
    print(f"\n[differential battery] REPRO_DIFF_SEED={DIFFERENTIAL_SEED}")


@pytest.mark.parametrize("scenario", SCENARIOS, ids=_scenario_id)
def test_inprocess_paths_agree(scenario, scenario_reference):
    """per-packet == fast == vectorized == thread pool (== linear truth)."""
    flavor, combiner, shape = scenario
    ref = scenario_reference(flavor, combiner, shape)

    # Fast path against the per-packet behavioural model: bit-exact.
    assert ref.fast == ref.per_packet

    # Vectorized cold path: a separate classifier so its caches start cold.
    vectorized = create_classifier(
        "configurable", ref.ruleset, vectorized=True, **ref.options
    )
    assert list(vectorized.classify_batch(ref.trace).results) == ref.per_packet

    # Thread-pool sharding over heterogeneous (fast + vectorized) replicas:
    # input-order reassembly must reproduce the single-replica batch.
    fast_replica = create_classifier(
        "configurable", ref.ruleset, fast=True, **ref.options
    )
    with ParallelSession([fast_replica, vectorized], chunk_size=32) as pool:
        fed = pool.feed(ref.trace)
    assert list(fed.results) == ref.per_packet

    if combiner == CombinerMode.CROSS_PRODUCT.value:
        # Cross-product resolution is exact, so the linear scan agrees
        # (first-label is the paper's approximate hardware fast path).
        assert [result.rule_id for result in ref.per_packet] == ref.truth
        assert not any(result.truncated for result in ref.per_packet)


@pytest.mark.parametrize("transport", ["pickle", "packed"])
@pytest.mark.parametrize("scenario", PROCESS_SCENARIOS, ids=_scenario_id)
def test_process_pool_transports_agree(scenario, transport, scenario_reference):
    """Process-pool results are bit-exact over both chunk transports."""
    if transport == "packed" and not shared_memory_available():
        pytest.skip("platform grants no shared memory segments")
    flavor, combiner, shape = scenario
    ref = scenario_reference(flavor, combiner, shape)
    spec = ReplicaSpec(
        "configurable", ref.ruleset, {"fast": True, **ref.options}
    )
    with ParallelSession.from_factory(
        spec, workers=2, chunk_size=32, backend="process", transport=transport
    ) as pool:
        assert pool.transport == transport
        fed = pool.feed(ref.trace)
        stats = pool.stats()
    assert list(fed.results) == ref.fast
    assert stats.packets == len(ref.trace)
    assert stats.matched == sum(1 for r in ref.fast if r.matched)


@pytest.mark.parametrize("scenario", ASYNC_SCENARIOS, ids=_scenario_id)
def test_async_feed_agrees(scenario, scenario_reference):
    """The asyncio front-end yields the same classifications, in input order."""
    flavor, combiner, shape = scenario
    ref = scenario_reference(flavor, combiner, shape)

    async def drive():
        async def live_source():
            for packet in ref.trace:
                yield packet

        replicas = [
            create_classifier("configurable", ref.ruleset, fast=True, **ref.options)
            for _ in range(2)
        ]
        with ParallelSession(replicas, chunk_size=32) as pool:
            return [result async for result in pool.afeed(live_source())]

    assert asyncio.run(drive()) == ref.fast

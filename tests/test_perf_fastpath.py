"""Tests for the repro.perf fast path and parallel sessions.

The acceptance property of the fast path is *bit-exact equivalence*: for any
workload, the memoizing batch path, the per-packet path and the linear-search
ground truth must agree.  These tests sweep that property across ClassBench
flavors and both combiner modes, and pin down the cache-invalidation
behaviour on installs, removes, reconfiguration and combiner-mode switches.
"""

from __future__ import annotations

import pytest

from repro.api import ClassificationSession, SessionStats, create_classifier
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import CombinerMode, IpAlgorithm
from repro.exceptions import ConfigurationError
from repro.perf import FastPathAccelerator, ParallelSession
from repro.rules.classbench import ClassBenchGenerator, FilterFlavor
from repro.rules.rule import Rule, RuleAction
from repro.rules.trace import generate_trace


@pytest.fixture(scope="module", params=["acl", "fw", "ipc"])
def flavored_workload(request):
    """A small ruleset + 1000-packet trace per ClassBench flavor."""
    flavor = FilterFlavor(request.param)
    ruleset = ClassBenchGenerator(flavor, seed=2014).generate(150)
    trace = generate_trace(ruleset, count=1000, seed=4242, locality=0.2)
    return ruleset, trace


class TestFastPathEquivalence:
    @pytest.mark.parametrize("vectorized", [False, True])
    @pytest.mark.parametrize("combiner", [m.value for m in CombinerMode])
    def test_fast_equals_slow_equals_ground_truth(self, flavored_workload, combiner, vectorized):
        """1000-packet sweep: fast path == per-packet path (== linear scan)."""
        ruleset, trace = flavored_workload
        classifier = create_classifier("configurable", ruleset, combiner=combiner)
        slow = classifier.classify_batch(trace)
        classifier.enable_fast_path(vectorized=vectorized)
        fast_cold = classifier.classify_batch(trace)
        fast_warm = classifier.classify_batch(trace)
        assert list(fast_cold.results) == list(slow.results)
        assert list(fast_warm.results) == list(slow.results)
        if combiner == CombinerMode.CROSS_PRODUCT.value:
            # Cross-product resolution is exact, so the linear scan agrees too
            # (first-label is the paper's approximate hardware fast path).
            truth = [
                match.rule_id if (match := ruleset.highest_priority_match(p)) else None
                for p in trace
            ]
            assert [result.rule_id for result in fast_cold] == truth

    def test_bst_configuration(self, flavored_workload):
        ruleset, trace = flavored_workload
        classifier = create_classifier("configurable", ruleset, ip_algorithm="bst")
        slow = classifier.classify_batch(trace[:400])
        classifier.enable_fast_path()
        assert list(classifier.classify_batch(trace[:400]).results) == list(slow.results)

    def test_single_classify_unaffected(self, flavored_workload):
        """classify() stays on the per-packet path even with the fast path on."""
        ruleset, trace = flavored_workload
        classifier = create_classifier("configurable", ruleset, fast=True)
        batch = classifier.classify_batch(trace[:50])
        assert [classifier.classify(p) for p in trace[:50]] == list(batch.results)


class TestSessionAggregates:
    def test_run_and_feed_match_direct_batch(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        batch = classifier.classify_batch(small_trace)

        session = ClassificationSession(classifier, chunk_size=32)
        stats = session.run(small_trace)
        assert stats.packets == batch.packets
        assert stats.matched == batch.matched
        assert stats.truncated_lookups == batch.truncated_lookups
        assert stats.average_memory_accesses == pytest.approx(batch.average_memory_accesses)
        assert stats.worst_memory_accesses == batch.worst_memory_accesses
        assert stats.average_latency_cycles == pytest.approx(batch.average_latency_cycles)

        session.reset()
        fed = session.feed(small_trace)
        assert list(fed.results) == list(batch.results)
        assert session.stats().packets == batch.packets


class TestCacheInvalidation:
    def _probe_rule(self):
        return Rule.build(
            9999, 0, src="10.0.0.0/8", dst="192.168.0.0/16", src_port="0:65535",
            dst_port="80:80", protocol=6, action=RuleAction.REDIRECT_GROUP,
        )

    def test_install_and_remove_invalidate(self, handcrafted_ruleset, web_packet):
        base = handcrafted_ruleset.filter(lambda rule: rule.rule_id != 0, name="trimmed")
        classifier = create_classifier("configurable", base, fast=True)
        assert classifier.classify_batch([web_packet])[0].rule_id == 1
        classifier.install(self._probe_rule())
        assert classifier.classify_batch([web_packet])[0].rule_id == 9999
        classifier.remove(9999)
        assert classifier.classify_batch([web_packet])[0].rule_id == 1

    def test_batch_results_track_slow_path_after_updates(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        classifier.classify_batch(small_trace)  # warm every cache
        classifier.install(self._probe_rule())
        fast = classifier.classify_batch(small_trace)
        classifier.disable_fast_path()
        slow = classifier.classify_batch(small_trace)
        assert list(fast.results) == list(slow.results)

    def test_reconfigure_rebinds_fast_path(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        classifier.classify_batch(small_trace)
        classifier.reconfigure(IpAlgorithm.BST)
        assert classifier.fast_path_enabled
        fast = classifier.classify_batch(small_trace)
        reference = ConfigurableClassifier.from_ruleset(
            small_acl_ruleset, classifier.config
        ).classify_batch(small_trace)
        assert list(fast.results) == list(reference.results)

    def test_set_combiner_mode_invalidates(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        cross = classifier.classify_batch(small_trace)
        classifier.set_combiner_mode(CombinerMode.FIRST_LABEL)
        first = classifier.classify_batch(small_trace)
        classifier.disable_fast_path()
        slow_first = classifier.classify_batch(small_trace)
        assert list(first.results) == list(slow_first.results)
        # The two modes genuinely differ on overlapping rule sets, so a stale
        # cache would have been caught above.
        assert cross.packets == first.packets

    def test_disable_detaches_listeners(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        accelerator = classifier._fast_path
        classifier.classify_batch(small_trace[:20])
        classifier.disable_fast_path()
        assert not classifier.fast_path_enabled
        assert accelerator.cache_stats()["field_entries"] == 0
        # Updates after detach must not fire stale hooks (would repopulate/clear).
        classifier.install(self._probe_rule())
        assert classifier.classify_batch(small_trace[:20]).packets == 20


class TestVectorizedMode:
    def test_block_walk_fallback_bit_exact(self, small_acl_ruleset, small_trace, monkeypatch):
        """Products beyond STAGE_CAP stream through the block walk, same results."""
        from repro.core.label_combiner import LabelCombiner

        baseline = create_classifier("configurable", small_acl_ruleset).classify_batch(
            small_trace
        )
        monkeypatch.setattr(LabelCombiner, "STAGE_CAP", 0)
        classifier = create_classifier("configurable", small_acl_ruleset, vectorized=True)
        assert list(classifier.classify_batch(small_trace).results) == list(
            baseline.results
        )

    def test_install_remove_invalidate(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, vectorized=True)
        classifier.classify_batch(small_trace)  # warm every cache
        probe = Rule.build(
            9999, 0, src="10.0.0.0/8", dst="0.0.0.0/0", src_port="0:65535",
            dst_port="0:65535", protocol=None, action=RuleAction.DROP,
        )
        classifier.install(probe)
        fast = classifier.classify_batch(small_trace)
        classifier.disable_fast_path()
        slow = classifier.classify_batch(small_trace)
        assert list(fast.results) == list(slow.results)

    def test_truncation_preserved(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        classifier.combiner.probe_budget = 1
        slow = classifier.classify_batch([web_packet, web_packet])
        classifier.enable_fast_path(vectorized=True)
        fast = classifier.classify_batch([web_packet, web_packet])
        assert list(fast.results) == list(slow.results)
        assert fast.truncated_lookups == slow.truncated_lookups == 2

    def test_enable_switches_modes(self, small_acl_ruleset):
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        plain = classifier._fast_path
        assert not plain.vectorized
        assert classifier.enable_fast_path() is plain  # same mode: untouched
        vectorized = classifier.enable_fast_path(vectorized=True)
        assert vectorized is not plain and vectorized.vectorized
        assert classifier.enable_fast_path(vectorized=True) is vectorized
        assert classifier.stats().details["fast_path_vectorized"]

    def test_reconfigure_preserves_vectorized_mode(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, vectorized=True)
        classifier.classify_batch(small_trace)
        classifier.reconfigure(IpAlgorithm.BST)
        assert classifier.fast_path_enabled
        assert classifier._fast_path.vectorized
        reference = ConfigurableClassifier.from_ruleset(
            small_acl_ruleset, classifier.config
        ).classify_batch(small_trace)
        assert list(classifier.classify_batch(small_trace).results) == list(
            reference.results
        )

    def test_generator_input(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, vectorized=True)
        batch = classifier.classify_batch(packet for packet in small_trace)
        assert batch.packets == len(small_trace)


def _unique_flow(index: int) -> "PacketHeader":
    """An adversarial flow: every dimension value changes every packet."""
    from repro.rules.packet import PacketHeader

    segment = index & 0xFFFF
    return PacketHeader(
        src_ip=(segment << 16) | (0xFFFF - segment),
        dst_ip=((0xFFFF - segment) << 16) | segment,
        src_port=segment,
        dst_port=0xFFFF - segment,
        protocol=index % 251,
    )


class TestAdversarialStream:
    """Satellite regression: all-unique-flow streams must hold memory flat."""

    LIMITS = dict(
        header_cache_limit=64,
        field_cache_limit=48,
        combiner_cache_limit=48,
        probe_cache_limit=96,
    )

    @pytest.fixture(scope="class")
    def adversarial_stream(self, small_acl_ruleset):
        """Unique-flow stream that also exercises varied rule matches.

        Ruleset-biased packets (so label combinations vary, pressuring the
        combiner layer) plus synthetic never-repeating flows (so field and
        header values never repeat either); every header is unique.
        """
        stream = []
        seen = set()
        for packet in generate_trace(small_acl_ruleset, count=4000, seed=5, locality=0.0):
            if packet not in seen:
                seen.add(packet)
                stream.append(packet)
        stream.extend(_unique_flow(index) for index in range(500))
        assert len(stream) > 1000
        return stream

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_caches_stay_bounded_and_exact(self, small_acl_ruleset, adversarial_stream, vectorized):
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset)
        stream = adversarial_stream
        baseline = classifier.classify_batch(stream)
        accelerator = FastPathAccelerator(
            classifier, vectorized=vectorized, **self.LIMITS
        )
        fast = accelerator.classify_batch(stream)
        assert list(fast.results) == list(baseline.results)
        stats = accelerator.cache_stats()
        assert stats["header_entries"] <= self.LIMITS["header_cache_limit"]
        assert stats["field_entries"] <= 7 * self.LIMITS["field_cache_limit"]
        assert stats["combiner_entries"] <= self.LIMITS["combiner_cache_limit"]
        assert stats["probe_entries"] <= self.LIMITS["probe_cache_limit"]
        # The stream overflows every bound, so eviction must have happened —
        # the unbounded-growth regression this test pins down.
        assert stats["header_evictions"] > 0
        assert stats["field_evictions"] > 0
        assert stats["combiner_evictions"] > 0
        accelerator.detach()

    def test_unbounded_defaults_would_have_grown(self, small_acl_ruleset):
        """Sanity check: the stream really is adversarial (all values unique)."""
        stream = [_unique_flow(index) for index in range(200)]
        assert len(set(stream)) == len(stream)
        assert len({packet.src_ip >> 16 for packet in stream}) == len(stream)


class TestAcceleratorInternals:
    def test_header_cache_bounded(self, small_acl_ruleset, small_trace):
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset)
        accelerator = FastPathAccelerator(classifier, header_cache_limit=8)
        baseline = classifier.classify_batch(small_trace)
        fast = accelerator.classify_batch(small_trace)
        assert list(fast.results) == list(baseline.results)
        assert accelerator.cache_stats()["header_entries"] <= 8

    def test_header_cache_evicts_lru_not_wholesale(self, small_acl_ruleset, small_trace):
        """The old limit behaviour cleared the whole cache; LRU keeps the hot set."""
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset)
        accelerator = FastPathAccelerator(classifier, header_cache_limit=8)
        distinct = []
        for packet in small_trace:
            if packet not in distinct:
                distinct.append(packet)
            if len(distinct) == 9:
                break
        accelerator.classify_batch(distinct[:8])
        accelerator.classify_batch([distinct[0]])  # refresh the oldest entry
        accelerator.classify_batch([distinct[8]])  # evicts distinct[1], not everything
        stats = accelerator.cache_stats()
        assert stats["header_entries"] == 8
        assert stats["header_evictions"] == 1
        assert distinct[0] in accelerator._header_cache
        assert distinct[1] not in accelerator._header_cache

    def test_invalid_header_limit(self, small_acl_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(small_acl_ruleset)
        with pytest.raises(ConfigurationError):
            FastPathAccelerator(classifier, header_cache_limit=0)

    def test_cache_stats_counters(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        classifier.classify_batch(small_trace)
        stats = classifier._fast_path.cache_stats()
        assert stats["field_misses"] > 0
        assert stats["field_hits"] > 0  # traces reuse field values constantly
        classifier.classify_batch(small_trace)
        assert classifier._fast_path.cache_stats()["header_hits"] >= len(small_trace)


class TestParallelSession:
    def test_merged_stats_match_single_session(self, small_acl_ruleset, small_trace):
        single = ClassificationSession(
            create_classifier("configurable", small_acl_ruleset, fast=True), chunk_size=64
        ).run(small_trace)
        pool = ParallelSession.from_factory(
            lambda: create_classifier("configurable", small_acl_ruleset, fast=True),
            workers=3,
            chunk_size=64,
        )
        merged = pool.run(small_trace)
        assert merged.packets == single.packets
        assert merged.matched == single.matched
        assert merged.truncated_lookups == single.truncated_lookups
        assert merged.worst_memory_accesses == single.worst_memory_accesses
        assert merged.average_memory_accesses == pytest.approx(single.average_memory_accesses)
        assert merged.average_latency_cycles == pytest.approx(single.average_latency_cycles)
        # Replicated structures: the deployment's memory is per-worker memory summed.
        assert merged.memory_bits == 3 * single.memory_bits
        assert merged.classifier == "configurablex3"

    def test_generator_input_and_reset(self, small_acl_ruleset, small_trace):
        pool = ParallelSession.from_factory(
            lambda: create_classifier("configurable", small_acl_ruleset), workers=2
        )
        stats = pool.run(packet for packet in small_trace)
        assert stats.packets == len(small_trace)
        pool.reset()
        assert pool.stats().packets == 0

    def test_invalid_worker_counts(self, small_acl_ruleset):
        with pytest.raises(ConfigurationError):
            ParallelSession.from_factory(lambda: None, workers=0)
        with pytest.raises(ConfigurationError):
            ParallelSession([])

    def test_heterogeneous_replicas_allowed(self, small_acl_ruleset, small_trace):
        pool = ParallelSession(
            [
                create_classifier("configurable", small_acl_ruleset),
                create_classifier("linear_search", small_acl_ruleset),
            ]
        )
        stats = pool.run(small_trace)
        assert stats.packets == len(small_trace)
        assert stats.classifier == "configurable+linear_searchx2"


class TestSessionStatsMerge:
    def test_weighted_merge(self):
        a = SessionStats(
            classifier="configurable", packets=10, matched=8, chunks=1,
            average_memory_accesses=4.0, worst_memory_accesses=9,
            average_latency_cycles=10.0, worst_latency_cycles=12,
            memory_bits=100, truncated_lookups=1,
        )
        b = SessionStats(
            classifier="configurable", packets=30, matched=15, chunks=2,
            average_memory_accesses=8.0, worst_memory_accesses=7,
            average_latency_cycles=20.0, worst_latency_cycles=25,
            memory_bits=100, truncated_lookups=0,
        )
        merged = SessionStats.merge([a, b])
        assert merged.packets == 40
        assert merged.matched == 23
        assert merged.chunks == 3
        assert merged.average_memory_accesses == pytest.approx(7.0)
        assert merged.worst_memory_accesses == 9
        assert merged.average_latency_cycles == pytest.approx(17.5)
        assert merged.worst_latency_cycles == 25
        assert merged.memory_bits == 200
        assert merged.truncated_lookups == 1

    def test_latency_none_handling(self):
        base = dict(
            packets=5, matched=1, chunks=1, average_memory_accesses=1.0,
            worst_memory_accesses=1, worst_latency_cycles=None, memory_bits=1,
        )
        a = SessionStats(classifier="x", average_latency_cycles=None, **base)
        merged = SessionStats.merge([a, a])
        assert merged.average_latency_cycles is None
        assert merged.worst_latency_cycles is None

    def test_empty_merge_rejected(self):
        with pytest.raises(ConfigurationError):
            SessionStats.merge([])


class TestTruncationSignal:
    def test_truncated_flag_reaches_session_stats(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        # web_packet matches rules 0, 1, 3 and 4: the cross product has more
        # than one candidate combination, so a one-probe budget truncates.
        classifier.combiner.probe_budget = 1
        result = classifier.classify(web_packet)
        assert result.truncated
        assert result.detail.truncated
        session = ClassificationSession(classifier)
        stats = session.run([web_packet])
        assert stats.truncated_lookups == 1

    def test_fast_path_preserves_truncation(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        classifier.combiner.probe_budget = 1
        slow = classifier.classify_batch([web_packet, web_packet])
        classifier.enable_fast_path()
        fast = classifier.classify_batch([web_packet, web_packet])
        assert list(fast.results) == list(slow.results)
        assert fast.truncated_lookups == slow.truncated_lookups == 2

    def test_untruncated_lookup_flag_false(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        result = classifier.classify(web_packet)
        assert not result.truncated
        assert ClassificationSession(classifier).run([web_packet]).truncated_lookups == 0

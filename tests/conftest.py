"""Shared fixtures for the test suite.

Workloads are deliberately small (hundreds of rules, short traces): the tests
exercise behaviour and invariants, not scale — scale lives in ``benchmarks/``.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from diff_scenarios import DIFFERENTIAL_SEED, build_scenario_trace
from repro.rules.classbench import ClassBenchGenerator, FilterFlavor
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule, RuleAction
from repro.rules.ruleset import RuleSet
from repro.rules.trace import generate_trace


@pytest.fixture(scope="session")
def differential_scenario():
    """Session-cached (ruleset, trace) factory for the differential battery.

    ``build(flavor, shape)`` returns a deterministic scenario workload keyed
    by ClassBench flavor and trace shape; repeated calls share one build.
    """
    cache = {}

    def build(
        flavor: str, shape: str, *, rules: int = 120, packets: int = 160
    ) -> Tuple[RuleSet, List[PacketHeader]]:
        key = (flavor, shape, rules, packets)
        if key not in cache:
            ruleset = ClassBenchGenerator(
                FilterFlavor(flavor), seed=DIFFERENTIAL_SEED
            ).generate(rules)
            trace = build_scenario_trace(
                ruleset, shape, count=packets, seed=DIFFERENTIAL_SEED + 1
            )
            cache[key] = (ruleset, trace)
        return cache[key]

    return build


@pytest.fixture(scope="session")
def small_acl_ruleset() -> RuleSet:
    """A ~180-rule ACL-flavoured rule set used across the suite."""
    return ClassBenchGenerator(FilterFlavor.ACL, seed=42).generate(200)


@pytest.fixture(scope="session")
def small_fw_ruleset() -> RuleSet:
    """A ~160-rule FW-flavoured rule set (more wildcards, more overlap)."""
    return ClassBenchGenerator(FilterFlavor.FW, seed=43).generate(200)


@pytest.fixture(scope="session")
def small_trace(small_acl_ruleset) -> list:
    """A 120-packet trace biased towards the small ACL rule set."""
    return generate_trace(small_acl_ruleset, count=120, seed=77)


@pytest.fixture()
def handcrafted_ruleset() -> RuleSet:
    """A tiny hand-written rule set with known overlap structure.

    Priorities: rule 0 is the most specific, rule 4 is a catch-all.  Several
    rules deliberately share field values so the label method's counters and
    the HPMR resolution among overlapping rules are both exercised.
    """
    rules = [
        Rule.build(0, 0, src="10.0.0.0/8", dst="192.168.1.0/24", src_port="0:65535",
                   dst_port="80:80", protocol=6, action=RuleAction.FORWARD),
        Rule.build(1, 1, src="10.0.0.0/8", dst="192.168.1.0/24", src_port="0:65535",
                   dst_port="0:1023", protocol=6, action=RuleAction.MODIFY),
        Rule.build(2, 2, src="10.1.0.0/16", dst="192.168.0.0/16", src_port="0:65535",
                   dst_port="53:53", protocol=17, action=RuleAction.REDIRECT_GROUP),
        Rule.build(3, 3, src="0.0.0.0/0", dst="192.168.0.0/16", src_port="0:65535",
                   dst_port="0:65535", protocol=6, action=RuleAction.DROP),
        Rule.build(4, 4, action=RuleAction.DROP),
    ]
    return RuleSet(rules, name="handcrafted")


@pytest.fixture()
def web_packet() -> PacketHeader:
    """A packet matching rules 0, 1, 3 and 4 of the handcrafted rule set."""
    return PacketHeader.from_strings("10.2.3.4", "192.168.1.10", 40000, 80, 6)


@pytest.fixture()
def dns_packet() -> PacketHeader:
    """A packet matching rules 2 and 4 of the handcrafted rule set."""
    return PacketHeader.from_strings("10.1.9.9", "192.168.7.7", 5353, 53, 17)


@pytest.fixture()
def miss_packet() -> PacketHeader:
    """A packet matching only the catch-all rule 4."""
    return PacketHeader.from_strings("172.16.0.1", "8.8.8.8", 1234, 4444, 17)

"""Failure-injection tests: capacity limits, exhaustion and error propagation.

The paper's architecture has hard resource limits (label widths, rule filter
capacity, register counts).  These tests drive the system into those limits on
purpose and check that the failure is loud, precise and does not corrupt the
surviving state.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.controller import FlowMod, FlowModCommand, SdnController
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm
from repro.exceptions import LabelError, UpdateError
from repro.hardware.hash_unit import LabelKeyLayout
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def _narrow_config(**kwargs) -> ClassifierConfig:
    """A configuration with deliberately tiny label/memory budgets."""
    base = ClassifierConfig(**kwargs)
    return base


class TestRuleCapacityExhaustion:
    def _tiny_capacity_config(self, entries: int) -> ClassifierConfig:
        base = ClassifierConfig()
        provisioning = replace(base.provisioning, rule_filter_entries=entries)
        return replace(base, provisioning=provisioning)

    def test_insert_beyond_capacity_fails_loudly(self):
        classifier = ConfigurableClassifier(self._tiny_capacity_config(3))
        for index in range(3):
            classifier.install_rule(Rule.build(index, index, dst_port=f"{80 + index}:{80 + index}"))
        with pytest.raises(UpdateError):
            classifier.install_rule(Rule.build(9, 9, dst_port="99:99"))
        # the three installed rules keep working
        assert classifier.installed_rules == 3

    def test_bst_reclaim_raises_the_ceiling(self):
        mbt = self._tiny_capacity_config(3)
        bst = mbt.with_ip_algorithm(IpAlgorithm.BST)
        assert bst.rule_capacity() > mbt.rule_capacity()

    def test_controller_reports_rejections_without_crashing(self):
        controller = SdnController()
        switch = controller.add_switch(1, config=self._tiny_capacity_config(2))
        ruleset = RuleSet(
            [Rule.build(index, index, dst_port=f"{1000 + index}:{1000 + index}") for index in range(5)],
            name="overflow",
        )
        report = controller.push_ruleset(1, ruleset)
        assert report.accepted == 2
        assert report.rejected == 3
        assert report.errors and "capacity" in report.errors[0]
        assert switch.stats.flow_mods_failed == 3
        assert switch.classifier.installed_rules == 2


class TestLabelSpaceExhaustion:
    def test_narrow_protocol_labels_exhaust(self):
        config = replace(ClassifierConfig(), label_layout=LabelKeyLayout(protocol_label_bits=1))
        classifier = ConfigurableClassifier(config)
        classifier.install_rule(Rule.build(0, 0, protocol=6, dst_port="1:1"))
        classifier.install_rule(Rule.build(1, 1, protocol=17, dst_port="2:2"))
        with pytest.raises(LabelError):
            classifier.install_rule(Rule.build(2, 2, protocol=1, dst_port="3:3"))

    def test_narrow_port_labels_exhaust(self):
        config = replace(ClassifierConfig(), label_layout=LabelKeyLayout(port_label_bits=2))
        classifier = ConfigurableClassifier(config)
        for index in range(4):
            classifier.install_rule(Rule.build(index, index, dst_port=f"{index}:{index}"))
        with pytest.raises(LabelError):
            classifier.install_rule(Rule.build(9, 9, dst_port="9:9"))

    def test_deleting_frees_label_space(self):
        config = replace(ClassifierConfig(), label_layout=LabelKeyLayout(port_label_bits=2))
        classifier = ConfigurableClassifier(config)
        for index in range(4):
            classifier.install_rule(Rule.build(index, index, dst_port=f"{index}:{index}"))
        classifier.remove_rule(0)
        # the freed label value can be reused by a new unique port value
        classifier.install_rule(Rule.build(9, 9, dst_port="9:9"))
        assert classifier.installed_rules == 4


class TestPortRegisterExhaustion:
    def test_register_file_overflow_surfaces_as_update_failure(self):
        base = ClassifierConfig()
        provisioning = replace(base.provisioning, port_registers=2)
        classifier = ConfigurableClassifier(replace(base, provisioning=provisioning))
        classifier.install_rule(Rule.build(0, 0, dst_port="1:1"))
        classifier.install_rule(Rule.build(1, 1, dst_port="2:2"))
        with pytest.raises(Exception):
            classifier.install_rule(Rule.build(2, 2, dst_port="3:3"))


class TestSwitchErrorHandling:
    def test_failed_flow_mod_does_not_poison_later_ones(self, handcrafted_ruleset):
        controller = SdnController()
        switch = controller.add_switch(1)
        channel = controller.channel(1)
        channel.send_to_switch(FlowMod(command=FlowModCommand.DELETE, rule_id=77, xid=1))
        channel.send_to_switch(FlowMod(command=FlowModCommand.ADD, rule=handcrafted_ruleset.get(0), xid=2))
        switch.process_control_messages()
        replies = channel.drain_from_switch()
        assert [reply.success for reply in replies] == [False, True]
        assert switch.classifier.installed_rules == 1

    def test_duplicate_push_keeps_first_copy_working(self, handcrafted_ruleset, web_packet):
        controller = SdnController()
        switch = controller.add_switch(1)
        controller.push_ruleset(1, handcrafted_ruleset)
        controller.push_ruleset(1, handcrafted_ruleset)  # all rejected as duplicates
        result = switch.classify(web_packet)
        assert result.rule_id == 0

"""Failure-injection tests: capacity limits, exhaustion and error propagation.

The paper's architecture has hard resource limits (label widths, rule filter
capacity, register counts).  These tests drive the system into those limits on
purpose and check that the failure is loud, precise and does not corrupt the
surviving state.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.controller import FlowMod, FlowModCommand, SdnController
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm
from repro.exceptions import LabelError, UpdateError
from repro.hardware.hash_unit import LabelKeyLayout
from repro.rules.rule import Rule
from repro.rules.ruleset import RuleSet


def _narrow_config(**kwargs) -> ClassifierConfig:
    """A configuration with deliberately tiny label/memory budgets."""
    base = ClassifierConfig(**kwargs)
    return base


class TestRuleCapacityExhaustion:
    def _tiny_capacity_config(self, entries: int) -> ClassifierConfig:
        base = ClassifierConfig()
        provisioning = replace(base.provisioning, rule_filter_entries=entries)
        return replace(base, provisioning=provisioning)

    def test_insert_beyond_capacity_fails_loudly(self):
        classifier = ConfigurableClassifier(self._tiny_capacity_config(3))
        for index in range(3):
            classifier.install_rule(Rule.build(index, index, dst_port=f"{80 + index}:{80 + index}"))
        with pytest.raises(UpdateError):
            classifier.install_rule(Rule.build(9, 9, dst_port="99:99"))
        # the three installed rules keep working
        assert classifier.installed_rules == 3

    def test_bst_reclaim_raises_the_ceiling(self):
        mbt = self._tiny_capacity_config(3)
        bst = mbt.with_ip_algorithm(IpAlgorithm.BST)
        assert bst.rule_capacity() > mbt.rule_capacity()

    def test_controller_reports_rejections_without_crashing(self):
        controller = SdnController()
        switch = controller.add_switch(1, config=self._tiny_capacity_config(2))
        ruleset = RuleSet(
            [Rule.build(index, index, dst_port=f"{1000 + index}:{1000 + index}") for index in range(5)],
            name="overflow",
        )
        report = controller.push_ruleset(1, ruleset)
        assert report.accepted == 2
        assert report.rejected == 3
        assert report.errors and "capacity" in report.errors[0]
        assert switch.stats.flow_mods_failed == 3
        assert switch.classifier.installed_rules == 2


class TestLabelSpaceExhaustion:
    def test_narrow_protocol_labels_exhaust(self):
        config = replace(ClassifierConfig(), label_layout=LabelKeyLayout(protocol_label_bits=1))
        classifier = ConfigurableClassifier(config)
        classifier.install_rule(Rule.build(0, 0, protocol=6, dst_port="1:1"))
        classifier.install_rule(Rule.build(1, 1, protocol=17, dst_port="2:2"))
        with pytest.raises(LabelError):
            classifier.install_rule(Rule.build(2, 2, protocol=1, dst_port="3:3"))

    def test_narrow_port_labels_exhaust(self):
        config = replace(ClassifierConfig(), label_layout=LabelKeyLayout(port_label_bits=2))
        classifier = ConfigurableClassifier(config)
        for index in range(4):
            classifier.install_rule(Rule.build(index, index, dst_port=f"{index}:{index}"))
        with pytest.raises(LabelError):
            classifier.install_rule(Rule.build(9, 9, dst_port="9:9"))

    def test_deleting_frees_label_space(self):
        config = replace(ClassifierConfig(), label_layout=LabelKeyLayout(port_label_bits=2))
        classifier = ConfigurableClassifier(config)
        for index in range(4):
            classifier.install_rule(Rule.build(index, index, dst_port=f"{index}:{index}"))
        classifier.remove_rule(0)
        # the freed label value can be reused by a new unique port value
        classifier.install_rule(Rule.build(9, 9, dst_port="9:9"))
        assert classifier.installed_rules == 4


class TestPortRegisterExhaustion:
    def test_register_file_overflow_surfaces_as_update_failure(self):
        base = ClassifierConfig()
        provisioning = replace(base.provisioning, port_registers=2)
        classifier = ConfigurableClassifier(replace(base, provisioning=provisioning))
        classifier.install_rule(Rule.build(0, 0, dst_port="1:1"))
        classifier.install_rule(Rule.build(1, 1, dst_port="2:2"))
        with pytest.raises(Exception):
            classifier.install_rule(Rule.build(2, 2, dst_port="3:3"))


class TestSwitchErrorHandling:
    def test_failed_flow_mod_does_not_poison_later_ones(self, handcrafted_ruleset):
        controller = SdnController()
        switch = controller.add_switch(1)
        channel = controller.channel(1)
        channel.send_to_switch(FlowMod(command=FlowModCommand.DELETE, rule_id=77, xid=1))
        channel.send_to_switch(FlowMod(command=FlowModCommand.ADD, rule=handcrafted_ruleset.get(0), xid=2))
        switch.process_control_messages()
        replies = channel.drain_from_switch()
        assert [reply.success for reply in replies] == [False, True]
        assert switch.classifier.installed_rules == 1

    def test_duplicate_push_keeps_first_copy_working(self, handcrafted_ruleset, web_packet):
        controller = SdnController()
        switch = controller.add_switch(1)
        controller.push_ruleset(1, handcrafted_ruleset)
        controller.push_ruleset(1, handcrafted_ruleset)  # all rejected as duplicates
        result = switch.classify(web_packet)
        assert result.rule_id == 0


# ---------------------------------------------------------------------------
# Fabric fault injection: mid-commit switch failures and poisoned replicas.
# ---------------------------------------------------------------------------


def _fabric_disjoint_rule(rule_id: int) -> Rule:
    low = rule_id * 100
    return Rule.build(rule_id=rule_id, priority=rule_id, dst_port=f"{low}:{low + 99}")


@pytest.mark.fabric
class TestFabricCommitFailure:
    """A switch rejecting its delta mid-commit must leave *every* switch at
    its pre-commit ``program_version`` — the all-or-nothing guarantee."""

    def _poisoned_fabric(self):
        """A line(3) fabric where switch 2 rejects inserts of rule 7.

        With six disjoint rules installed, placement is two singleton
        buckets — ids (0, 2, 4) hosted on switches 0 and 1, ids (1, 3, 5)
        on switch 2 — so one transaction inserting rules 6 and 7 commits
        switches 0 and 1 first (ascending dpid order) before switch 2
        rejects rule 7: the rollback path genuinely has work to undo.
        """
        from repro.controller.fabric import FabricController, Topology

        fabric = FabricController(Topology.line(3))
        fabric.install(RuleSet([_fabric_disjoint_rule(i) for i in range(6)], name="seed"))
        assert fabric.plan.groups == ((0, 2, 4), (1, 3, 5))
        assert fabric.plan.hosts == ((0, 1), (2,))
        victim = fabric.switch(2).classifier
        real_insert = victim.update_engine.insert_rule

        def poisoned(rule, *args, **kwargs):
            if rule.rule_id == 7:
                raise UpdateError("injected: switch 2 refuses rule 7")
            return real_insert(rule, *args, **kwargs)

        victim.update_engine.insert_rule = poisoned
        return fabric, victim, real_insert

    def test_mid_commit_failure_restores_every_switch(self):
        from repro.controller.fabric import FabricCommitError

        fabric, victim, real_insert = self._poisoned_fabric()
        versions = {
            s.datapath_id: s.classifier.control.version for s in fabric.switches()
        }
        programs = {
            s.datapath_id: s.classifier.control.program().rules
            for s in fabric.switches()
        }
        fabric_version = fabric.version

        with pytest.raises(FabricCommitError) as excinfo:
            fabric.begin().insert(_fabric_disjoint_rule(6)).insert(
                _fabric_disjoint_rule(7)
            ).commit()

        error = excinfo.value
        assert error.failed_switch == 2
        assert error.rolled_back == (1, 0)  # undone in reverse commit order
        assert error.rollback_failures == ()
        # Every switch is back at its pre-commit program version and content.
        for switch in fabric.switches():
            dpid = switch.datapath_id
            assert switch.classifier.control.version == versions[dpid]
            assert switch.classifier.control.program().rules == programs[dpid]
        assert fabric.version == fabric_version
        assert 6 not in {r.rule_id for r in fabric.program().rules}
        assert fabric.rolled_back_commits == 1
        assert fabric.partial_commits == 0

        # The fabric is not wedged: unpoison and the same transaction lands.
        victim.update_engine.insert_rule = real_insert
        fabric.begin().insert(_fabric_disjoint_rule(6)).insert(
            _fabric_disjoint_rule(7)
        ).commit()
        assert {6, 7} <= {r.rule_id for r in fabric.program().rules}
        assert fabric.rolled_back_commits == 1  # unchanged

    def test_first_switch_failure_rolls_back_nothing(self):
        from repro.controller.fabric import FabricCommitError, FabricController, Topology

        fabric = FabricController(Topology.line(3))
        fabric.install(RuleSet([_fabric_disjoint_rule(i) for i in range(6)], name="seed"))
        first = fabric.switch(0).classifier

        def always_fails(rule, *args, **kwargs):
            raise UpdateError("injected: switch 0 is down")

        first.update_engine.insert_rule = always_fails
        with pytest.raises(FabricCommitError) as excinfo:
            fabric.begin().insert(_fabric_disjoint_rule(6)).commit()
        assert excinfo.value.failed_switch == 0
        assert excinfo.value.rolled_back == ()
        assert fabric.rolled_back_commits == 1
        assert fabric.partial_commits == 0


@pytest.mark.fabric
class TestFabricServeFailure:
    """A switch failing mid-serve cancels the whole serve with no partial
    statistics — the data-plane analogue of the commit guarantee."""

    def _served_fabric(self):
        from repro.controller.fabric import FabricController, Topology
        from repro.rules.classbench import ClassBenchGenerator, FilterFlavor
        from repro.rules.trace import generate_fabric_trace

        ruleset = ClassBenchGenerator(FilterFlavor.ACL, seed=11).generate(60)
        topology = Topology.line(3)
        fabric = FabricController(topology)
        fabric.install(ruleset)
        trace = generate_fabric_trace(ruleset, topology.ingresses(), 90, seed=12)
        return fabric, trace

    def test_poisoned_switch_aborts_serve_without_partial_stats(self):
        fabric, trace = self._served_fabric()

        poisoned = fabric.switch(2).classifier

        def explode(chunk, *args, **kwargs):
            raise RuntimeError("injected: switch 2 lost its datapath")

        original = poisoned.classify_batch
        poisoned.classify_batch = explode
        with pytest.raises(RuntimeError, match="injected"):
            fabric.serve(trace)
        # No switch recorded any share of the cancelled serve.
        for switch in fabric.switches():
            assert switch.stats.packets_classified == 0
            assert switch.stats.packets_matched == 0

        # Un-poison: the identical trace then serves fully and consistently.
        poisoned.classify_batch = original
        result = fabric.serve(trace)
        assert result.packets == len(trace)
        total_lookups = sum(s.packets for s in result.per_switch.values())
        assert total_lookups == result.hop_lookups
        for switch in fabric.switches():
            expected = result.per_switch[switch.datapath_id]
            assert switch.stats.packets_classified == expected.packets
            assert switch.stats.packets_matched == expected.hits

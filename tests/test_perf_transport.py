"""Packed-header transport: codec properties, ring lifecycle, zero-copy proof.

Three concerns, matching the layers of :mod:`repro.perf.transport`:

* **codec** — encode/decode round-trips over boundary and random values,
  chunk slicing at arbitrary offsets, buffer-protocol inputs, and a
  golden-bytes fixture that freezes the 104-bit wire layout (changing it is
  a wire-format break and must fail here first);
* **ring** — slot accounting, capacity limits, and unlink-on-close of the
  shared-memory segment (nothing may linger in ``/dev/shm``);
* **session lifecycle** — double ``close()`` is idempotent, submitting to a
  closed :class:`~repro.perf.parallel.ParallelSession` raises cleanly on
  every entry point, segments are released on close *and* on poisoned-packet
  abort, and the packed process backend is bit-exact with the thread backend
  while pickling no :class:`~repro.rules.packet.PacketHeader` at all —
  proven by making ``PacketHeader.__reduce__`` raise during dispatch.
"""

from __future__ import annotations

import array
import asyncio
import os
import random
import struct

import pytest

from repro.exceptions import ConfigurationError
from repro.perf import (
    ParallelSession,
    ReplicaSpec,
    pack_headers,
    shared_memory_available,
    unpack_headers,
)
from repro.perf.transport import (
    HEADER_BYTES,
    SharedChunkRing,
    pack_into,
    read_chunk,
)
from repro.rules.packet import (
    FIVE_TUPLE_WIDTHS,
    HEADER_BITS,
    PacketHeader,
)
from repro.rules.trace import generate_trace

needs_shared_memory = pytest.mark.skipif(
    not shared_memory_available(), reason="platform grants no shared memory"
)

#: Per-field maxima from the canonical widths (32, 32, 16, 16, 8).
FIELD_MAXES = tuple((1 << width) - 1 for width in FIVE_TUPLE_WIDTHS.values())


def random_header(rng: random.Random) -> PacketHeader:
    return PacketHeader(*(rng.randint(0, high) for high in FIELD_MAXES))


# ---------------------------------------------------------------------------
# Codec properties
# ---------------------------------------------------------------------------


class TestPackedCodec:
    def test_layout_constants(self):
        assert HEADER_BITS == 104
        assert HEADER_BYTES == 13
        assert tuple(FIVE_TUPLE_WIDTHS.values()) == (32, 32, 16, 16, 8)

    def test_round_trip_boundary_values(self):
        # All-zero, all-max, and each field individually at its maximum.
        headers = [PacketHeader(0, 0, 0, 0, 0), PacketHeader(*FIELD_MAXES)]
        for position, high in enumerate(FIELD_MAXES):
            values = [0] * len(FIELD_MAXES)
            values[position] = high
            headers.append(PacketHeader(*values))
        packed = pack_headers(headers)
        assert len(packed) == len(headers) * HEADER_BYTES
        assert unpack_headers(packed) == headers

    def test_round_trip_random_headers(self):
        rng = random.Random(0xC0DEC)
        headers = [random_header(rng) for _ in range(256)]
        assert unpack_headers(pack_headers(headers), len(headers)) == headers

    def test_golden_bytes_wire_layout(self):
        """Frozen wire format: big-endian src_ip dst_ip src_port dst_port proto.

        If this test fails, the packed layout changed — that is a wire-format
        break between dispatcher and workers, not a test to update casually.
        """
        golden = [
            (PacketHeader(0, 0, 0, 0, 0), bytes(13)),
            (PacketHeader(*FIELD_MAXES), b"\xff" * 13),
            (
                PacketHeader(0x01020304, 0x05060708, 0x090A, 0x0B0C, 0x0D),
                bytes(range(1, 14)),
            ),
            (
                PacketHeader.from_strings("192.168.1.10", "10.0.0.1", 443, 65535, 17),
                b"\xc0\xa8\x01\x0a\x0a\x00\x00\x01\x01\xbb\xff\xff\x11",
            ),
        ]
        for header, wire in golden:
            assert pack_headers([header]) == wire
            assert unpack_headers(wire) == [header]
        assert pack_headers([h for h, _ in golden]) == b"".join(w for _, w in golden)

    def test_chunk_slicing_at_offsets(self):
        """pack_into/unpack_headers address sub-chunks of one buffer exactly."""
        rng = random.Random(5150)
        headers = [random_header(rng) for _ in range(10)]
        buffer = bytearray(4 + len(headers) * HEADER_BYTES)  # 4-byte gap first
        written = pack_into(buffer, 4, headers)
        assert written == len(headers) * HEADER_BYTES
        assert buffer[:4] == bytes(4)  # the gap is untouched
        # Any (offset, count) window decodes to the matching slice.
        assert unpack_headers(buffer, 3, offset=4) == headers[:3]
        assert (
            unpack_headers(buffer, 4, offset=4 + 5 * HEADER_BYTES) == headers[5:9]
        )
        assert unpack_headers(buffer, 0, offset=4) == []

    def test_buffer_protocol_inputs(self):
        """The codec speaks buffer protocol: array.array and memoryview work."""
        rng = random.Random(7)
        headers = [random_header(rng) for _ in range(8)]
        packed = pack_headers(headers)
        assert unpack_headers(array.array("B", packed)) == headers
        assert unpack_headers(memoryview(packed)) == headers
        # Buffers of multi-byte items measure their length in items, not
        # bytes: whole-buffer decode must still see every header (8 headers
        # = 104 bytes = 26 uint32 items — a silent-truncation regression).
        assert unpack_headers(array.array("I", packed)) == headers
        writable = array.array("B", bytes(len(packed)))
        pack_into(writable, 0, headers)
        assert writable.tobytes() == packed

    def test_numpy_buffer_round_trip(self):
        np = pytest.importorskip("numpy")
        rng = random.Random(11)
        headers = [random_header(rng) for _ in range(8)]
        packed = pack_headers(headers)
        assert unpack_headers(np.frombuffer(packed, dtype=np.uint8)) == headers
        target = np.zeros(len(packed), dtype=np.uint8)
        pack_into(target, 0, headers)
        assert target.tobytes() == packed

    def test_ragged_tail_rejected(self):
        packed = pack_headers([PacketHeader(1, 2, 3, 4, 5)])
        with pytest.raises(ConfigurationError, match="whole number"):
            unpack_headers(packed + b"\x00")


# ---------------------------------------------------------------------------
# Shared-memory ring
# ---------------------------------------------------------------------------


@needs_shared_memory
class TestSharedChunkRing:
    def test_slot_accounting_and_read_back(self):
        rng = random.Random(21)
        ring = SharedChunkRing(slots=2, headers_per_slot=4)
        try:
            assert ring.free_slots == 2
            first, second = ring.acquire(), ring.acquire()
            assert {first, second} == {0, 1}
            assert ring.acquire() is None  # exhausted, never blocks
            chunk = [random_header(rng) for _ in range(4)]
            descriptor = ring.write(second, chunk)
            assert descriptor.segment == ring.name
            assert descriptor.offset == second * ring.slot_bytes
            assert descriptor.count == 4
            # Worker-side decode (attach by segment name) sees the chunk.
            assert read_chunk(*descriptor) == chunk
            ring.release(first)
            assert ring.free_slots == 1
        finally:
            ring.close()

    def test_oversized_chunk_rejected(self):
        ring = SharedChunkRing(slots=1, headers_per_slot=2)
        try:
            slot = ring.acquire()
            with pytest.raises(ConfigurationError, match="exceeds the ring slot"):
                ring.write(slot, [PacketHeader(0, 0, 0, 0, 0)] * 3)
        finally:
            ring.close()

    def test_close_unlinks_segment_and_is_idempotent(self):
        from multiprocessing import shared_memory

        ring = SharedChunkRing(slots=1, headers_per_slot=1)
        name = ring.name
        ring.close()
        assert ring.closed
        ring.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one slot"):
            SharedChunkRing(slots=0, headers_per_slot=4)
        with pytest.raises(ConfigurationError, match="at least one header"):
            SharedChunkRing(slots=4, headers_per_slot=0)


# ---------------------------------------------------------------------------
# ParallelSession lifecycle
# ---------------------------------------------------------------------------


class UnpackableHeader(PacketHeader):
    """A header that passes no wire validation and overflows the codec.

    Models a corrupt capture record: the packed transport must abort the
    run cleanly (and release its ring) when a header cannot be encoded.
    """

    def __post_init__(self) -> None:  # skip the range validation
        pass


def _shm_entries() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # non-tmpfs platform: rely on unlink errors
        return set()


@pytest.fixture(scope="module")
def transport_spec(small_acl_ruleset) -> ReplicaSpec:
    return ReplicaSpec("configurable", small_acl_ruleset, {"fast": True})


@pytest.fixture(scope="module")
def transport_trace(small_acl_ruleset):
    return generate_trace(small_acl_ruleset, count=120, seed=99)


class TestSessionLifecycle:
    def test_thread_close_idempotent_and_terminal(self, transport_spec, transport_trace):
        pool = ParallelSession.from_factory(transport_spec, workers=2, chunk_size=16)
        stats = pool.run(transport_trace)
        pool.close()
        pool.close()  # idempotent
        assert pool.closed
        # Committed statistics stay readable after close on the thread backend.
        assert pool.stats() == stats
        for call in (pool.run, pool.feed):
            with pytest.raises(ConfigurationError, match="closed"):
                call(transport_trace)

    def test_resumed_afeed_after_close_raises_cleanly(
        self, transport_spec, transport_trace
    ):
        """Resuming a suspended afeed() generator after close() fails clean.

        The terminal-close contract promises a session-closed
        ConfigurationError, not an AttributeError from a torn-down executor
        (or a CancelledError from its cancelled futures).
        """
        pool = ParallelSession.from_factory(transport_spec, workers=2, chunk_size=8)

        async def drive():
            agen = pool.afeed(transport_trace)
            await agen.__anext__()
            pool.close()
            with pytest.raises(ConfigurationError, match="closed"):
                while True:
                    await agen.__anext__()

        asyncio.run(drive())

    def test_async_entry_points_raise_after_close(self, transport_spec, transport_trace):
        pool = ParallelSession.from_factory(transport_spec, workers=1, chunk_size=16)
        pool.close()

        async def drive_afeed():
            return [result async for result in pool.afeed(transport_trace)]

        with pytest.raises(ConfigurationError, match="closed"):
            asyncio.run(drive_afeed())
        with pytest.raises(ConfigurationError, match="closed"):
            asyncio.run(pool.arun(transport_trace))

    def test_process_stats_survive_close_after_feed_only(
        self, transport_spec, transport_trace
    ):
        """feed()-only sessions keep committed stats readable after close().

        feed() never calls stats() while the pool is up, so the replica info
        must be harvested at shutdown — otherwise the committed counters
        exist but are unreachable.
        """
        with ParallelSession.from_factory(
            transport_spec, workers=2, chunk_size=16, backend="process"
        ) as pool:
            pool.feed(transport_trace)
        stats = pool.stats()
        assert stats.packets == len(transport_trace)
        assert stats.classifier.startswith("configurable")

    @needs_shared_memory
    def test_afeed_abandonment_aborts_and_session_recovers(
        self, transport_spec, transport_trace
    ):
        """Breaking out of afeed() mid-stream aborts cleanly on the packed pool."""
        before = _shm_entries()
        with ParallelSession.from_factory(
            transport_spec, workers=2, chunk_size=8,
            backend="process", transport="packed",
        ) as pool:

            async def abandon():
                agen = pool.afeed(transport_trace)
                async for _ in agen:
                    break
                await agen.aclose()

            asyncio.run(abandon())
            # The abandoned run committed nothing and released its ring...
            assert pool.stats().packets == 0
            assert pool._ring is None
            # ...and the session still classifies afterwards.
            fed = pool.feed(transport_trace)
            assert len(fed.results) == len(transport_trace)
        assert _shm_entries() <= before

    @needs_shared_memory
    def test_interleaved_dispatch_on_packed_transport(
        self, transport_spec, transport_trace
    ):
        """A feed() issued while an afeed() is suspended must not starve it.

        The suspended afeed holds the session's warm ring, so the inner
        feed() gets its own private ring — both complete bit-exact and no
        segment leaks (regression: the inner dispatch used to exhaust the
        shared slots and unlink the ring out from under the outer stream).
        """
        before = _shm_entries()
        with ParallelSession.from_factory(
            transport_spec, workers=2, chunk_size=8,
            backend="process", transport="packed",
        ) as pool:
            expected = [r.rule_id for r in pool.feed(transport_trace).results]

            async def interleave():
                outer = []
                inner = None
                async for result in pool.afeed(transport_trace):
                    outer.append(result.rule_id)
                    if inner is None:
                        inner = [
                            r.rule_id for r in pool.feed(transport_trace).results
                        ]
                return outer, inner

            outer, inner = asyncio.run(interleave())
            assert outer == expected
            assert inner == expected
        assert _shm_entries() <= before
        before = _shm_entries()
        pool = ParallelSession.from_factory(
            transport_spec, workers=2, chunk_size=16,
            backend="process", transport="packed",
        )
        try:
            pool.run(transport_trace)
            assert pool._ring is not None  # the run left its ring warm
        finally:
            pool.close()
        assert pool._ring is None
        assert _shm_entries() <= before, "leaked /dev/shm segment after close"
        with pytest.raises(ConfigurationError, match="closed"):
            pool.run(transport_trace)

    @needs_shared_memory
    def test_packed_abort_releases_shared_memory(self, transport_spec, transport_trace):
        """A header the codec cannot encode aborts the run and frees the ring."""
        before = _shm_entries()
        with ParallelSession.from_factory(
            transport_spec, workers=2, chunk_size=16,
            backend="process", transport="packed",
        ) as pool:
            committed = pool.run(transport_trace)
            poisoned = list(transport_trace[:40]) + [
                UnpackableHeader(0, 0, 1 << 16, 0, 0)
            ] + list(transport_trace[40:])
            with pytest.raises(struct.error):
                pool.run(poisoned)
            # The abort released the ring and committed nothing...
            assert pool._ring is None
            assert _shm_entries() <= before, "leaked /dev/shm segment after abort"
            assert pool.stats() == committed
            # ...and the session recovers with a fresh ring on the next run.
            again = pool.run(transport_trace)
            assert again.packets == 2 * committed.packets
        assert _shm_entries() <= before


# ---------------------------------------------------------------------------
# Zero-copy proof: packed dispatch never serialises a PacketHeader
# ---------------------------------------------------------------------------


def _poisoned_reduce(self):
    raise RuntimeError("PacketHeader must never be pickled on the packed transport")


@needs_shared_memory
class TestZeroCopyDispatch:
    def test_packed_transport_never_pickles_headers(
        self, monkeypatch, transport_spec, transport_trace
    ):
        """Packed process backend == thread backend, with pickling forbidden.

        ``PacketHeader.__reduce__`` is made to raise before any chunk is
        dispatched: the packed transport (headers cross as fixed-width words
        in shared memory, results come back as header-free records) must not
        notice, while the pickle transport must blow up on its first chunk.
        """
        with ParallelSession.from_factory(
            transport_spec, workers=2, chunk_size=16
        ) as pool:
            expected = pool.feed(transport_trace)

        monkeypatch.setattr(
            PacketHeader, "__reduce__", _poisoned_reduce, raising=False
        )
        with ParallelSession.from_factory(
            transport_spec, workers=2, chunk_size=16,
            backend="process", transport="packed",
        ) as pool:
            assert pool.transport == "packed"
            fed = pool.feed(transport_trace)
            stats = pool.stats()
        assert list(fed.results) == list(expected.results)
        assert stats.packets == len(transport_trace)

        with ParallelSession.from_factory(
            transport_spec, workers=1, chunk_size=16,
            backend="process", transport="pickle",
        ) as pool:
            with pytest.raises(RuntimeError, match="never be pickled"):
                pool.feed(transport_trace)

    def test_auto_transport_falls_back_without_shared_memory(
        self, monkeypatch, transport_spec
    ):
        import repro.perf.parallel as parallel_module

        monkeypatch.setattr(
            parallel_module, "shared_memory_available", lambda: False
        )
        pool = ParallelSession.from_factory(
            transport_spec, workers=1, backend="process", transport="auto"
        )
        try:
            assert pool.transport == "pickle"
        finally:
            pool.close()
        with pytest.raises(ConfigurationError, match="shared_memory"):
            ParallelSession.from_factory(
                transport_spec, workers=1, backend="process", transport="packed"
            )

    def test_thread_backend_rejects_explicit_transport(self, transport_spec):
        with pytest.raises(ConfigurationError, match="in-process"):
            ParallelSession.from_factory(
                transport_spec, workers=1, backend="thread", transport="packed"
            )


class TestPackedChunkStreaming:
    """The bounded chunk packer and PackedChunk acceptance end to end."""

    def test_iter_packed_chunks_bounds_and_tail(self):
        from repro.perf.transport import PackedChunk, iter_packed_chunks

        rng = random.Random(5)
        headers = [random_header(rng) for _ in range(10)]
        chunks = list(iter_packed_chunks(iter(headers), 4))
        assert [chunk.count for chunk in chunks] == [4, 4, 2]
        assert all(isinstance(chunk, PackedChunk) for chunk in chunks)
        assert all(len(c.data) == c.count * HEADER_BYTES for c in chunks)
        assert b"".join(c.data for c in chunks) == pack_headers(headers)
        # Decode helper restores the original headers chunk-locally.
        assert [h for c in chunks for h in c.headers()] == headers

    def test_iter_packed_chunks_accepts_plain_tuples(self):
        from repro.perf.transport import iter_packed_chunks

        five = (167772161, 3232235777, 1234, 80, 6)
        (chunk,) = iter_packed_chunks([five], 8)
        assert chunk.headers() == [PacketHeader(*five)]

    def test_iter_packed_chunks_rejects_bad_chunk_size(self):
        from repro.perf.transport import iter_packed_chunks

        with pytest.raises(ConfigurationError):
            list(iter_packed_chunks([], 0))

    @needs_shared_memory
    def test_ring_write_accepts_packed_chunk_verbatim(self):
        from repro.perf.transport import PackedChunk, iter_packed_chunks

        rng = random.Random(6)
        headers = [random_header(rng) for _ in range(7)]
        (chunk,) = iter_packed_chunks(headers, 16)
        ring = SharedChunkRing(slots=2, headers_per_slot=16)
        try:
            descriptor = ring.write(0, chunk)
            assert descriptor.count == 7
            assert read_chunk(*descriptor) == headers
            # Byte-identical to the sequence write of the same headers.
            other = ring.write(1, headers)
            span = descriptor.count * HEADER_BYTES
            assert (
                bytes(ring._shm.buf[descriptor.offset:descriptor.offset + span])
                == bytes(ring._shm.buf[other.offset:other.offset + span])
            )
            with pytest.raises(ConfigurationError, match="exceeds the ring slot"):
                ring.write(0, PackedChunk(chunk.data * 4, chunk.count * 4))
        finally:
            ring.close()

    def test_thread_pool_accepts_packed_chunk_stream(self, small_acl_ruleset):
        from repro.api import create_classifier
        from repro.perf.transport import iter_packed_chunks

        trace = generate_trace(small_acl_ruleset, count=90, seed=21)
        replica = create_classifier("configurable", small_acl_ruleset, fast=True)
        reference = list(replica.classify_batch(trace).results)
        with ParallelSession([replica], chunk_size=16) as pool:
            fed = pool.feed(iter_packed_chunks(trace, 16))
        assert list(fed.results) == reference

    def test_oversized_packed_chunks_are_resliced(self, small_acl_ruleset):
        from repro.api import create_classifier
        from repro.perf.transport import iter_packed_chunks

        trace = generate_trace(small_acl_ruleset, count=64, seed=22)
        replica = create_classifier("configurable", small_acl_ruleset, fast=True)
        reference = list(replica.classify_batch(trace).results)
        with ParallelSession([replica], chunk_size=8) as pool:
            # One 64-header chunk into an 8-header session: re-sliced, not
            # rejected, and still bit-exact in order.
            fed = pool.feed(iter_packed_chunks(trace, 64))
            assert list(fed.results) == reference
            assert pool.stats().chunks == 8

    def test_mixed_header_and_packed_stream_rejected(self, small_acl_ruleset):
        from repro.api import create_classifier
        from repro.perf.transport import iter_packed_chunks

        trace = generate_trace(small_acl_ruleset, count=16, seed=23)
        (chunk,) = iter_packed_chunks(trace, 16)
        replica = create_classifier("configurable", small_acl_ruleset, fast=True)
        with ParallelSession([replica], chunk_size=8) as pool:
            with pytest.raises(ConfigurationError, match="mix"):
                pool.feed([trace[0], chunk])
            with pytest.raises(ConfigurationError, match="mix"):
                pool.feed([chunk, trace[0]])

    @needs_shared_memory
    def test_process_packed_transport_ships_chunks_unpickled(
        self, small_acl_ruleset, monkeypatch
    ):
        from repro.perf.transport import iter_packed_chunks

        trace = generate_trace(small_acl_ruleset, count=60, seed=24)
        chunks = list(iter_packed_chunks(trace, 16))
        spec = ReplicaSpec("configurable", small_acl_ruleset, {"fast": True})
        with ParallelSession.from_factory(
            spec, workers=2, chunk_size=16, backend="process", transport="packed"
        ) as pool:
            # Headers cross the boundary as ring bytes; pickling one anywhere
            # on the dispatch path would raise.
            monkeypatch.setattr(PacketHeader, "__reduce__", _poisoned_reduce)
            stats = pool.run(iter(chunks))
        monkeypatch.undo()
        assert stats.packets == len(trace)

"""Unit tests for the analysis helpers: metrics, uniqueness, reports, literature."""

from __future__ import annotations

import pytest

from repro.analysis import (
    TABLE_I_PAPER_VALUES,
    TABLE_V_PAPER_VALUES,
    TABLE_VI_PAPER_VALUES,
    TABLE_VII_PAPER_VALUES,
    format_kv,
    format_number,
    format_table,
    measure_lookups,
    measure_updates,
    storage_reduction,
    summarize_lookups,
    summarize_updates,
    table_ii_rows,
    unique_field_report,
)
from repro.core.classifier import ConfigurableClassifier
from repro.rules.ruleset import RuleSet


class TestLookupMetrics:
    def test_measure_lookups(self, handcrafted_ruleset, web_packet, dns_packet, miss_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        metrics = measure_lookups(classifier, [web_packet, dns_packet, miss_packet])
        assert metrics.packets == 3
        assert metrics.matched == 3
        assert metrics.hit_ratio == 1.0
        assert metrics.average_memory_accesses > 0
        assert metrics.worst_memory_accesses >= metrics.average_memory_accesses
        assert metrics.worst_latency_cycles >= metrics.average_latency_cycles

    def test_empty_summaries(self):
        lookups = summarize_lookups([])
        updates = summarize_updates([])
        assert lookups.packets == 0 and lookups.hit_ratio == 0.0
        assert updates.operations == 0 and updates.counter_only_fraction == 0.0

    def test_measure_updates(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier()
        metrics = measure_updates(classifier, handcrafted_ruleset.rules())
        assert metrics.operations == len(handcrafted_ruleset)
        assert metrics.total_cycles > 0
        assert 0.0 <= metrics.counter_only_fraction <= 1.0
        assert metrics.average_cycles == pytest.approx(metrics.total_cycles / metrics.operations)


class TestUniqueness:
    def test_unique_field_report(self, handcrafted_ruleset):
        report = unique_field_report(handcrafted_ruleset)
        assert report.rules == 5
        assert report.unique_counts["src_port"] == 1
        assert report.unique_counts["protocol"] == 3
        assert report.total_unique_fields() == sum(report.unique_counts.values())
        assert report.duplication_ratio() > 1.0

    def test_storage_reduction_positive_for_heavy_reuse(self, small_acl_ruleset):
        # Reuse (and therefore the saving) grows with rule count; even the
        # 200-rule test workload must already save a substantial fraction.
        assert storage_reduction(small_acl_ruleset) > 0.2

    def test_storage_reduction_empty_ruleset(self):
        assert storage_reduction(RuleSet(name="empty")) == 0.0

    def test_table_ii_rows(self, handcrafted_ruleset, small_acl_ruleset):
        reports = [unique_field_report(handcrafted_ruleset), unique_field_report(small_acl_ruleset)]
        rows = table_ii_rows(reports)
        assert len(rows) == 5
        assert rows[0]["Packet Header Field"] == "Source IP Address"
        assert len(rows[0]) == 3


class TestReports:
    def test_format_number(self):
        assert format_number(1234567) == "1,234,567"
        assert format_number(3.14159) == "3.14"
        assert format_number(12345.6789) == "12,345.68"
        assert format_number("text") == "text"
        assert format_number(True) == "True"
        assert format_number(float("nan")) == "n/a"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_format_table_explicit_headers(self):
        text = format_table([{"a": 1, "b": 2}], headers=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_kv(self):
        text = format_kv({"key": 1, "longer key": 2.5}, title="Block")
        assert text.splitlines()[0] == "Block"
        assert ":" in text.splitlines()[1]

    def test_format_kv_empty(self):
        assert "(empty)" in format_kv({})


class TestLiteratureConstants:
    def test_table_i_rows_present(self):
        assert set(TABLE_I_PAPER_VALUES) == {"HyperCuts", "RFC", "DCFL", "Option1", "Option2"}
        assert TABLE_I_PAPER_VALUES["DCFL"].lookup_memory_accesses == pytest.approx(23.1)
        assert TABLE_I_PAPER_VALUES["RFC"].memory_mbit == pytest.approx(31.48)

    def test_table_vi_values(self):
        assert TABLE_VI_PAPER_VALUES["MBT"]["lookup_accesses_per_packet"] == 1
        assert TABLE_VI_PAPER_VALUES["BST"]["stored_rules"] == 12000

    def test_table_vii_values(self):
        assert TABLE_VII_PAPER_VALUES["Our system with MBT"].throughput_gbps == pytest.approx(42.73)
        assert TABLE_VII_PAPER_VALUES["DCFLE"].stored_rules == 128

    def test_table_v_values(self):
        assert TABLE_V_PAPER_VALUES["Maximum Frequency MHz"] == pytest.approx(133.51)
        assert TABLE_V_PAPER_VALUES["Total block memory bits"][1] == 54_476_800

"""Unit battery for the exact-match flow-cache tier (repro.perf.flowcache).

Covers the timeout policies (idle / hard / hybrid) on the packets-observed
virtual clock, capacity-pressure eviction with and without predictors,
surgical invalidation by control-plane commits, the wholesale epoch flush on
untracked mutations, prewarming, the flow-churn trace generator, and the
stats plumbing through SessionStats / ParallelSession / cache_stats.
"""

from __future__ import annotations

import pytest

from repro.api.control import Txn
from repro.api.registry import create_classifier
from repro.api.session import ClassificationSession, SessionStats
from repro.core.classifier import ConfigurableClassifier
from repro.exceptions import ConfigurationError, ExperimentError
from repro.perf.flowcache import (
    DEFAULT_FLOW_CAPACITY,
    FlowCache,
    FrequencyPredictor,
    RecencyPredictor,
    resolve_predictor,
)
from repro.perf.transport import HEADER_BYTES, pack_header, pack_headers
from repro.rules.trace import generate_flow_churn_trace

pytestmark = pytest.mark.flowcache


def _flow_classifier(ruleset, **flow_options) -> ConfigurableClassifier:
    classifier = create_classifier("configurable", ruleset)
    classifier.enable_flow_cache(**flow_options)
    return classifier


# ---------------------------------------------------------------------------
# Construction & configuration
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_defaults(self):
        cache = FlowCache()
        assert cache.capacity == DEFAULT_FLOW_CAPACITY
        assert cache.policy == "idle"
        assert cache.predictor is None
        assert len(cache) == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"capacity": -3},
            {"policy": "wall_clock"},
            {"idle_timeout": 0},
            {"hard_timeout": -1},
            {"idle_timeout": 100, "hard_timeout": 50},
            {"predictor": "oracle"},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FlowCache(**kwargs)

    def test_predictor_resolution(self):
        assert isinstance(resolve_predictor("frequency"), FrequencyPredictor)
        assert isinstance(resolve_predictor("recency"), RecencyPredictor)
        assert resolve_predictor(None) is None
        instance = FrequencyPredictor()
        assert resolve_predictor(instance) is instance

    def test_enable_flow_cache_rejects_instance_plus_options(self, handcrafted_ruleset):
        classifier = create_classifier("configurable", handcrafted_ruleset)
        with pytest.raises(ConfigurationError):
            classifier.enable_flow_cache(FlowCache(), capacity=8)

    def test_enable_fast_path_flow_cache_shorthand(self, handcrafted_ruleset):
        classifier = create_classifier("configurable", handcrafted_ruleset)
        classifier.enable_fast_path(vectorized=True, flow_cache=True)
        assert classifier.flow_cache is not None
        custom = FlowCache(capacity=32, policy="hard", idle_timeout=8, hard_timeout=8)
        classifier.enable_fast_path(vectorized=True, flow_cache=custom)
        assert classifier.flow_cache is custom
        classifier.disable_flow_cache()
        assert classifier.flow_cache is None

    def test_stats_details_expose_flow_cache(self, handcrafted_ruleset):
        classifier = _flow_classifier(handcrafted_ruleset, policy="hybrid")
        details = classifier.stats().details
        assert details["flow_cache"] is True
        assert details["flow_cache_policy"] == "hybrid"
        classifier.disable_flow_cache()
        assert classifier.stats().details["flow_cache"] is False

    def test_factory_flow_knobs(self, handcrafted_ruleset):
        classifier = create_classifier(
            "configurable",
            handcrafted_ruleset,
            flow_cache=True,
            flow_policy="hybrid",
            flow_capacity=16,
            flow_predictor="recency",
            flow_idle_timeout=4,
            flow_hard_timeout=64,
        )
        cache = classifier.flow_cache
        assert cache.policy == "hybrid"
        assert cache.capacity == 16
        assert isinstance(cache.predictor, RecencyPredictor)
        assert cache.idle_timeout == 4
        assert cache.hard_timeout == 64


# ---------------------------------------------------------------------------
# Timeout policies on the virtual clock
# ---------------------------------------------------------------------------


class TestTimeoutPolicies:
    def test_idle_timeout_expires_quiet_flow(
        self, handcrafted_ruleset, web_packet, dns_packet
    ):
        classifier = _flow_classifier(
            handcrafted_ruleset, policy="idle", idle_timeout=5, hard_timeout=100
        )
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet])
        # Six dns packets push the clock 6 ticks past web's last hit.
        classifier.classify_batch([dns_packet] * 6)
        result = classifier.classify_batch([web_packet])
        assert cache.timeout_evictions == 1
        assert cache.misses == 3  # web, dns, web-after-expiry
        assert result[0].rule_id == 0

    def test_idle_timeout_hot_flow_lives_forever(self, handcrafted_ruleset, web_packet):
        classifier = _flow_classifier(
            handcrafted_ruleset, policy="idle", idle_timeout=3, hard_timeout=100
        )
        cache = classifier.flow_cache
        for _ in range(20):
            classifier.classify_batch([web_packet])
        assert cache.timeout_evictions == 0
        assert cache.misses == 1
        assert cache.hits == 19

    def test_hard_timeout_expires_hot_flow(self, handcrafted_ruleset, web_packet):
        classifier = _flow_classifier(
            handcrafted_ruleset, policy="hard", idle_timeout=6, hard_timeout=6
        )
        cache = classifier.flow_cache
        # The flow is hit on every tick, yet dies 6 ticks after installation.
        classifier.classify_batch([web_packet] * 20)
        assert cache.timeout_evictions >= 2
        assert cache.misses >= 3

    def test_hybrid_budget_growth_earns_residency(
        self, handcrafted_ruleset, web_packet, dns_packet, miss_packet
    ):
        classifier = _flow_classifier(
            handcrafted_ruleset, policy="hybrid", idle_timeout=2, hard_timeout=64
        )
        cache = classifier.flow_cache
        # web earns budget 2 -> 4 -> 8 over two hits; dns stays at 2.
        classifier.classify_batch([web_packet, web_packet, web_packet, dns_packet])
        # A 5-tick gap of unrelated traffic: within web's earned budget (8),
        # beyond dns's untouched budget (2).
        classifier.classify_batch([miss_packet] * 5)
        classifier.classify_batch([web_packet, dns_packet])
        # 2 in-batch web hits + 4 in-batch miss repeats + web surviving the gap
        assert cache.hits == 7
        assert cache.timeout_evictions == 1  # dns idled out
        assert cache.misses == 4  # web, dns, miss, dns-after-expiry

    def test_hybrid_budget_capped_at_hard_timeout(self, handcrafted_ruleset, web_packet):
        classifier = _flow_classifier(
            handcrafted_ruleset, policy="hybrid", idle_timeout=4, hard_timeout=16
        )
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet] * 10)
        entry = next(iter(cache._entries.values()))
        assert entry[5] == 16  # budget doubled up to, and clamped at, the cap

    def test_explicit_expire_sweep(self, handcrafted_ruleset, web_packet, dns_packet):
        classifier = _flow_classifier(
            handcrafted_ruleset, policy="idle", idle_timeout=3, hard_timeout=100
        )
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet])
        classifier.classify_batch([dns_packet] * 5)
        assert len(cache) == 2
        dead = cache.expire()
        assert dead == 1  # web idled out; dns is still fresh
        assert len(cache) == 1
        assert cache.timeout_evictions == 1


# ---------------------------------------------------------------------------
# Capacity pressure & predictors
# ---------------------------------------------------------------------------


class TestCapacityPressure:
    def test_lru_eviction_under_pressure(
        self, handcrafted_ruleset, web_packet, dns_packet, miss_packet
    ):
        classifier = _flow_classifier(handcrafted_ruleset, capacity=2)
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet, dns_packet, miss_packet])
        assert len(cache) == 2
        assert cache.capacity_evictions == 1
        # web was the least recently used of the three: it went first.
        classifier.classify_batch([miss_packet, dns_packet])
        assert cache.hits == 2
        classifier.classify_batch([web_packet])
        assert cache.misses == 4  # web, dns, miss + web again after eviction

    def test_frequency_predictor_keeps_hot_flow(
        self, handcrafted_ruleset, web_packet, dns_packet, miss_packet
    ):
        classifier = _flow_classifier(
            handcrafted_ruleset, capacity=2, predictor="frequency"
        )
        cache = classifier.flow_cache
        # web is hot (2 hits) but least recent; dns is cold but fresher.
        classifier.classify_batch([web_packet, web_packet, web_packet, dns_packet])
        classifier.classify_batch([miss_packet])
        assert cache.capacity_evictions == 1
        before = cache.hits
        classifier.classify_batch([web_packet])  # survived: hit
        assert cache.hits == before + 1
        classifier.classify_batch([dns_packet])  # evicted: miss
        assert cache.misses == 4

    def test_recency_predictor_reproduces_lru(
        self, handcrafted_ruleset, web_packet, dns_packet, miss_packet
    ):
        classifier = _flow_classifier(
            handcrafted_ruleset, capacity=2, predictor="recency"
        )
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet, web_packet, web_packet, dns_packet])
        classifier.classify_batch([miss_packet])
        before = cache.misses
        classifier.classify_batch([web_packet])  # LRU victim despite its hits
        assert cache.misses == before + 1

    def test_capacity_sweep_prefers_expired_entries(
        self, handcrafted_ruleset, web_packet, dns_packet, miss_packet
    ):
        classifier = _flow_classifier(
            handcrafted_ruleset, capacity=2, policy="idle", idle_timeout=2, hard_timeout=50
        )
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet])
        classifier.classify_batch([dns_packet, dns_packet, dns_packet])
        # web has idled out; installing a third flow reclaims it as a
        # timeout eviction, not a capacity eviction of a live entry.
        classifier.classify_batch([miss_packet])
        assert cache.timeout_evictions == 1
        assert cache.capacity_evictions == 0

    def test_stats_shape(self, handcrafted_ruleset, web_packet):
        classifier = _flow_classifier(handcrafted_ruleset, policy="hybrid")
        classifier.classify_batch([web_packet, web_packet])
        stats = classifier.flow_cache.stats()
        assert stats["policy"] == "hybrid"
        assert stats["lookups"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["evictions"] == 0
        assert stats["entries"] == 1


# ---------------------------------------------------------------------------
# Invalidation: surgical on commit, wholesale on untracked mutations
# ---------------------------------------------------------------------------


class TestInvalidation:
    def test_commit_remove_drops_only_decided_entries(
        self, handcrafted_ruleset, web_packet, dns_packet, miss_packet
    ):
        classifier = _flow_classifier(handcrafted_ruleset)
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet, dns_packet, miss_packet])
        assert len(cache) == 3
        # Rule 2 decided the dns entry; web (rule 0) and miss (rule 4) stay.
        classifier.control.apply_delta(Txn().remove(2).delta())
        assert len(cache) == 2
        assert cache.surgical_drops == 1
        assert cache.invalidations == 0
        before = cache.hits
        result = classifier.classify_batch([web_packet, dns_packet])
        assert cache.hits == before + 1  # web still resident
        assert result[1].rule_id == 4  # dns re-resolved to the catch-all

    def test_commit_insert_drops_matching_entries(
        self, handcrafted_ruleset, web_packet, dns_packet, miss_packet
    ):
        from repro.rules.rule import Rule, RuleAction

        classifier = _flow_classifier(handcrafted_ruleset)
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet, dns_packet, miss_packet])
        # A new top-priority rule covering exactly the miss flow.
        new_rule = Rule.build(
            10, 0, src="172.16.0.1/32", dst="8.8.8.8/32", src_port="1234:1234",
            dst_port="4444:4444", protocol=17, action=RuleAction.FORWARD,
        )
        classifier.control.apply_delta(Txn().insert(new_rule).delta())
        assert cache.surgical_drops == 1
        assert cache.invalidations == 0
        assert len(cache) == 2
        result = classifier.classify_batch([miss_packet, web_packet])
        assert result[0].rule_id == 10  # re-resolved through the new rule
        assert result[1].rule_id == 0  # untouched entry replayed

    def test_commit_reconfigure_flushes_wholesale(
        self, handcrafted_ruleset, web_packet, dns_packet
    ):
        classifier = _flow_classifier(handcrafted_ruleset)
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet, dns_packet])
        classifier.control.apply_delta(Txn().reconfigure(ip_algorithm="bst").delta())
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.surgical_drops == 0
        # Post-flush decisions match a never-cached reference.
        reference = create_classifier("configurable", handcrafted_ruleset, ip_algorithm="bst")
        assert list(classifier.classify_batch([web_packet, dns_packet])) == list(
            reference.classify_batch([web_packet, dns_packet])
        )

    def test_first_label_commit_flushes_wholesale(
        self, handcrafted_ruleset, web_packet, dns_packet
    ):
        # Under the approximate first_label combiner an unrelated rule can
        # change probe order for untouched flows, so surgical keeps are off.
        classifier = create_classifier(
            "configurable", handcrafted_ruleset, combiner="first_label"
        )
        classifier.enable_flow_cache()
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet, dns_packet])
        classifier.control.apply_delta(Txn().remove(2).delta())
        assert len(cache) == 0
        assert cache.invalidations == 1
        assert cache.surgical_drops == 0

    def test_untracked_install_flushes_via_epochs(
        self, handcrafted_ruleset, web_packet, miss_packet
    ):
        from repro.rules.rule import Rule, RuleAction

        classifier = _flow_classifier(handcrafted_ruleset)
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet, miss_packet])
        assert len(cache) == 2
        # Direct engine mutation, bypassing the control plane: the epoch
        # safety net must flush everything at the next batch.
        classifier.install_rule(
            Rule.build(
                11, 0, src="172.16.0.1/32", dst="8.8.8.8/32", src_port="1234:1234",
                dst_port="4444:4444", protocol=17, action=RuleAction.FORWARD,
            )
        )
        result = classifier.classify_batch([miss_packet, web_packet])
        assert cache.invalidations == 1
        assert result[0].rule_id == 11
        assert result[1].rule_id == 0

    def test_set_combiner_mode_flushes(self, handcrafted_ruleset, web_packet):
        from repro.core.config import CombinerMode

        classifier = _flow_classifier(handcrafted_ruleset)
        cache = classifier.flow_cache
        classifier.classify_batch([web_packet])
        classifier.set_combiner_mode(CombinerMode.FIRST_LABEL)
        assert len(cache) == 0
        assert cache.invalidations == 1

    def test_commit_equivalence_on_generated_workload(self, small_acl_ruleset):
        """A mid-trace commit keeps the cached path equal to an uncached one."""
        trace = generate_flow_churn_trace(
            small_acl_ruleset, count=400, seed=11, flows=32, churn=0.05
        )
        cached = create_classifier(
            "configurable", small_acl_ruleset, vectorized=True,
            flow_cache=True, flow_capacity=64,
        )
        reference = create_classifier("configurable", small_acl_ruleset)
        first = cached.classify_batch(trace[:200])
        assert list(first) == list(reference.classify_batch(trace[:200]))
        victims = sorted({r.rule_id for r in first if r.rule_id is not None})[:2]
        delta = Txn().remove(victims[0]).remove(victims[1]).delta()
        cached.control.apply_delta(delta)
        reference.control.apply_delta(delta)
        cached_out = cached.classify_batch(trace[200:])
        reference_out = reference.classify_batch(trace[200:])
        assert [r.rule_id for r in cached_out] == [r.rule_id for r in reference_out]
        assert cached.flow_cache.surgical_drops > 0 or cached.flow_cache.invalidations > 0


# ---------------------------------------------------------------------------
# Prewarm
# ---------------------------------------------------------------------------


class TestPrewarm:
    def test_prewarm_installs_without_serving_stats(self, small_acl_ruleset):
        trace = generate_flow_churn_trace(small_acl_ruleset, count=300, seed=5, flows=24)
        classifier = create_classifier(
            "configurable", small_acl_ruleset, vectorized=True, flow_cache=True
        )
        cache = classifier.flow_cache
        installed = cache.prewarm(trace, classifier._classify_batch_uncached)
        assert installed == len({p for p in trace})
        assert cache.lookups == 0 and cache.hits == 0 and cache.misses == 0
        assert cache.insertions == installed
        result = classifier.classify_batch(trace)
        assert cache.hits == len(trace)  # every flow already resident
        reference = create_classifier("configurable", small_acl_ruleset)
        assert list(result) == list(reference.classify_batch(trace))

    def test_prewarm_is_idempotent(self, small_acl_ruleset):
        trace = generate_flow_churn_trace(small_acl_ruleset, count=100, seed=5, flows=16)
        classifier = create_classifier(
            "configurable", small_acl_ruleset, fast=True, flow_cache=True
        )
        cache = classifier.flow_cache
        first = cache.prewarm(trace, classifier._classify_batch_uncached)
        assert first > 0
        assert cache.prewarm(trace, classifier._classify_batch_uncached) == 0


# ---------------------------------------------------------------------------
# Stats plumbing: SessionStats, ParallelSession, cache_stats ratios
# ---------------------------------------------------------------------------


class TestStatsPlumbing:
    def test_session_stats_flow_fields(self, small_acl_ruleset):
        trace = generate_flow_churn_trace(small_acl_ruleset, count=300, seed=9, flows=20)
        classifier = create_classifier(
            "configurable", small_acl_ruleset, fast=True, flow_cache=True
        )
        session = ClassificationSession(classifier)
        stats = session.run(trace)
        assert stats.flow_lookups == len(trace)
        assert 0.0 < stats.flow_hit_rate <= 1.0
        assert stats.flow_hits == classifier.flow_cache.hits

    def test_session_stats_flow_fields_default_zero(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset)
        stats = ClassificationSession(classifier).run(small_trace)
        assert stats.flow_lookups == 0
        assert stats.flow_hit_rate == 0.0

    def test_session_stats_merge_sums_flow_counters(self):
        base = dict(
            classifier="c", packets=10, matched=8, chunks=1,
            average_memory_accesses=1.0, worst_memory_accesses=2,
            average_latency_cycles=None, worst_latency_cycles=None,
            memory_bits=100,
        )
        a = SessionStats(flow_lookups=10, flow_hits=6, flow_evictions=1, **base)
        b = SessionStats(flow_lookups=20, flow_hits=18, flow_evictions=0, **base)
        merged = SessionStats.merge([a, b])
        assert merged.flow_lookups == 30
        assert merged.flow_hits == 24
        assert merged.flow_evictions == 1
        assert merged.flow_hit_rate == 24 / 30

    def test_parallel_session_merged_flow_stats(self, small_acl_ruleset):
        from repro.perf import ParallelSession, ReplicaSpec

        trace = generate_flow_churn_trace(small_acl_ruleset, count=240, seed=3, flows=16)
        spec = ReplicaSpec(
            "configurable", small_acl_ruleset,
            {"fast": True, "flow_cache": True, "flow_capacity": 64},
        )
        with ParallelSession.from_factory(spec, 2, chunk_size=32) as session:
            session.run(trace)
            merged = session.flow_cache_stats()
            assert merged is not None
            assert merged["replicas"] == 2
            assert merged["lookups"] == len(trace)
            assert 0.0 < merged["hit_rate"] <= 1.0
            stats = session.stats()
            assert stats.flow_lookups == merged["lookups"]
            assert stats.flow_hits == merged["hits"]

    def test_parallel_session_without_flow_cache_reports_none(self, small_acl_ruleset):
        from repro.perf import ParallelSession, ReplicaSpec

        spec = ReplicaSpec("configurable", small_acl_ruleset, {"fast": True})
        with ParallelSession.from_factory(spec, 2) as session:
            assert session.flow_cache_stats() is None

    def test_cache_stats_derived_hit_rates(self, small_acl_ruleset, small_trace):
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        classifier.classify_batch(small_trace)
        classifier.classify_batch(small_trace)
        stats = classifier._fast_path.cache_stats()
        for layer in ("header", "field", "combiner", "result"):
            rate = stats[f"{layer}_hit_rate"]
            hits = stats[f"{layer}_hits"]
            misses = stats[f"{layer}_misses"]
            assert 0.0 <= rate <= 1.0
            assert rate == (hits / (hits + misses) if hits + misses else 0.0)
        # The second pass re-served every header from the header cache.
        assert stats["header_hit_rate"] >= 0.5


# ---------------------------------------------------------------------------
# Flow-churn trace generator
# ---------------------------------------------------------------------------


class TestFlowChurnGenerator:
    def test_deterministic_given_seed(self, small_acl_ruleset):
        a = generate_flow_churn_trace(small_acl_ruleset, count=200, seed=42, churn=0.1)
        b = generate_flow_churn_trace(small_acl_ruleset, count=200, seed=42, churn=0.1)
        c = generate_flow_churn_trace(small_acl_ruleset, count=200, seed=43, churn=0.1)
        assert a == b
        assert a != c

    def test_flow_population_bound_without_churn(self, small_acl_ruleset):
        trace = generate_flow_churn_trace(
            small_acl_ruleset, count=500, seed=1, flows=12, churn=0.0
        )
        assert len(set(trace)) <= 12

    def test_churn_introduces_fresh_flows(self, small_acl_ruleset):
        quiet = generate_flow_churn_trace(
            small_acl_ruleset, count=500, seed=1, flows=12, churn=0.0
        )
        churned = generate_flow_churn_trace(
            small_acl_ruleset, count=500, seed=1, flows=12, churn=0.2
        )
        assert len(set(churned)) > len(set(quiet))

    def test_zipf_skews_toward_head_flows(self, small_acl_ruleset):
        from collections import Counter

        zipf = generate_flow_churn_trace(
            small_acl_ruleset, count=2000, seed=2, flows=50, popularity="zipf"
        )
        uniform = generate_flow_churn_trace(
            small_acl_ruleset, count=2000, seed=2, flows=50, popularity="uniform"
        )
        zipf_top = Counter(zipf).most_common(1)[0][1]
        uniform_top = Counter(uniform).most_common(1)[0][1]
        # Rank-1 under Zipf(1.2) carries a large constant share; under
        # uniform it hovers near count/flows.  A 2x gap is a safe oracle.
        assert zipf_top > 2 * uniform_top

    def test_hit_ratio_bias(self, small_acl_ruleset):
        from repro.rules.trace import trace_stats

        trace = generate_flow_churn_trace(
            small_acl_ruleset, count=400, seed=3, flows=40, hit_ratio=1.0
        )
        assert trace_stats(small_acl_ruleset, trace).hit_ratio == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"count": -1},
            {"flows": 0},
            {"popularity": "pareto"},
            {"zipf_exponent": 0.0},
            {"churn": 1.0},
            {"hit_ratio": 1.5},
        ],
    )
    def test_invalid_parameters_rejected(self, small_acl_ruleset, kwargs):
        options = {"count": 10}
        options.update(kwargs)
        with pytest.raises(ExperimentError):
            generate_flow_churn_trace(small_acl_ruleset, **options)


# ---------------------------------------------------------------------------
# Packed-key codec helper
# ---------------------------------------------------------------------------


class TestPackHeader:
    def test_single_header_matches_batch_codec(self, web_packet, dns_packet):
        assert pack_header(web_packet) == pack_headers([web_packet])
        assert len(pack_header(dns_packet)) == HEADER_BYTES
        assert pack_header(web_packet) != pack_header(dns_packet)

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tcam"])

    def test_generate_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestExperimentCommands:
    def test_table4_runs(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out and "B, C, A" in out

    def test_table5_runs(self, capsys):
        assert main(["table5"]) == 0
        assert "Stratix V" in capsys.readouterr().out

    def test_table7_runs(self, capsys):
        assert main(["table7"]) == 0
        assert "Our system with MBT" in capsys.readouterr().out

    def test_fig3_runs(self, capsys):
        assert main(["fig3"]) == 0
        assert "Initiation interval" in capsys.readouterr().out

    def test_fig5_runs(self, capsys):
        assert main(["fig5"]) == 0
        assert "memory sharing" in capsys.readouterr().out


class TestWorkloadCommands:
    def test_generate_writes_classbench_file(self, tmp_path, capsys):
        output = tmp_path / "acl.rules"
        assert main(["generate", "--size", "300", "--output", str(output)]) == 0
        assert output.exists()
        lines = output.read_text().strip().splitlines()
        assert len(lines) > 200
        assert lines[0].startswith("@")
        assert "Wrote" in capsys.readouterr().out

    def test_classify_synthetic_workload(self, capsys):
        assert main(["classify", "--size", "300", "--packets", "40"]) == 0
        out = capsys.readouterr().out
        assert "Classification run" in out
        assert "Hit ratio" in out
        assert "MBT" in out

    def test_classify_bst_configuration(self, capsys):
        assert main(["classify", "--size", "300", "--packets", "20", "--ip-algorithm", "bst"]) == 0
        assert "BST" in capsys.readouterr().out

    def test_classify_from_generated_file(self, tmp_path, capsys):
        rules_file = tmp_path / "fw.rules"
        main(["generate", "--flavor", "fw", "--size", "300", "--output", str(rules_file)])
        capsys.readouterr()
        assert main(["classify", "--rules", str(rules_file), "--packets", "20"]) == 0
        assert "Classification run" in capsys.readouterr().out

    def test_classify_registered_baseline(self, capsys):
        assert main(["classify", "--classifier", "hypercuts", "--size", "300",
                     "--packets", "20"]) == 0
        out = capsys.readouterr().out
        assert "hypercuts" in out
        assert "Hit ratio" in out

    def test_classify_unknown_classifier_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["classify", "--classifier", "tcam"])

    def test_classify_fast_path(self, capsys):
        assert main(["classify", "--size", "300", "--packets", "40", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Batch fast path                : on" in out

    def test_classify_parallel_workers(self, capsys):
        assert main(["classify", "--size", "300", "--packets", "40", "--fast",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "configurablex2" in out
        assert "Worker replicas" in out
        assert any(
            line.startswith("Worker backend") and line.endswith("thread")
            for line in out.splitlines()
        )

    def test_classify_vectorized(self, capsys):
        assert main(["classify", "--size", "300", "--packets", "40",
                     "--vectorized"]) == 0
        assert "on (vectorized)" in capsys.readouterr().out

    def test_classify_process_backend(self, capsys):
        assert main(["classify", "--size", "200", "--packets", "30", "--fast",
                     "--workers", "2", "--backend", "process"]) == 0
        out = capsys.readouterr().out
        assert "configurablex2" in out
        assert any(
            line.startswith("Worker backend") and line.endswith("process")
            for line in out.splitlines()
        )

    def test_classify_packed_transport(self, capsys):
        from repro.perf import shared_memory_available

        if not shared_memory_available():
            pytest.skip("platform grants no shared memory")
        assert main(["classify", "--size", "200", "--packets", "30", "--fast",
                     "--workers", "2", "--backend", "process",
                     "--transport", "packed"]) == 0
        out = capsys.readouterr().out
        assert any(
            line.startswith("Chunk transport") and line.endswith("packed")
            for line in out.splitlines()
        )

    def test_classify_pickle_transport_honoured_with_one_worker(self, capsys):
        # An explicit transport is never a silent no-op: one worker still
        # runs through a process pool over the requested transport.
        assert main(["classify", "--size", "200", "--packets", "30", "--fast",
                     "--workers", "1", "--backend", "process",
                     "--transport", "pickle"]) == 0
        out = capsys.readouterr().out
        assert any(
            line.startswith("Chunk transport") and line.endswith("pickle")
            for line in out.splitlines()
        )

    def test_classify_transport_rejected_on_thread_backend(self, capsys):
        assert main(["classify", "--size", "200", "--packets", "30", "--fast",
                     "--workers", "2", "--transport", "packed"]) == 2
        assert "in-process" in capsys.readouterr().err

    def test_classify_async_feed(self, capsys):
        assert main(["classify", "--size", "300", "--packets", "40", "--fast",
                     "--workers", "2", "--async-feed"]) == 0
        out = capsys.readouterr().out
        assert "Feed mode" in out
        assert "async" in out

    def test_classify_fast_baseline_rejected(self, capsys):
        assert main(["classify", "--classifier", "hypercuts", "--size", "200",
                     "--packets", "10", "--fast"]) == 2
        err = capsys.readouterr().err
        assert "--fast is only supported by the 'configurable' classifier" in err

    def test_classify_vectorized_baseline_rejected(self, capsys):
        assert main(["classify", "--classifier", "linear_search", "--size", "150",
                     "--packets", "5", "--vectorized"]) == 2
        assert "--vectorized" in capsys.readouterr().err

    def test_sweep_fast_baseline_warns(self, capsys):
        assert main(["sweep", "--size", "150", "--packets", "10", "--fast",
                     "--classifiers", "configurable,linear_search"]) == 0
        captured = capsys.readouterr()
        assert "linear_search" in captured.out
        assert "warning: --fast is only supported" in captured.err

    def test_classify_invalid_worker_count(self, capsys):
        assert main(["classify", "--size", "150", "--packets", "5",
                     "--workers", "0"]) == 2
        assert "worker count must be positive" in capsys.readouterr().err

    def test_sweep_fast_flag(self, capsys):
        assert main(["sweep", "--size", "150", "--packets", "10", "--fast",
                     "--classifiers", "configurable,linear_search"]) == 0
        out = capsys.readouterr().out
        assert "configurable" in out and "linear_search" in out

    def test_sweep_bogus_name_clean_error(self, capsys):
        assert main(["sweep", "--size", "150", "--packets", "10",
                     "--classifiers", "tcam"]) == 2
        err = capsys.readouterr().err
        assert "'tcam'" in err and "unknown classifier" in err
        assert "registered:" in err

    def test_sweep_selected_classifiers(self, capsys):
        assert main(["sweep", "--size", "200", "--packets", "20",
                     "--classifiers", "linear_search,hypercuts,configurable"]) == 0
        out = capsys.readouterr().out
        assert "Classifier sweep" in out
        for name in ("linear_search", "hypercuts", "configurable"):
            assert name in out


class TestIngestCommands:
    """The real-workload interchange subcommands (repro.io)."""

    @pytest.fixture()
    def workload_files(self, tmp_path):
        """A generated filter file plus a capture of its synthetic trace."""
        from repro.io.pcap import write_pcap
        from repro.rules.parser import load_classbench_file
        from repro.rules.trace import generate_trace

        rules_file = tmp_path / "acl.rules"
        assert main(["generate", "--size", "150", "--seed", "7",
                     "--output", str(rules_file)]) == 0
        ruleset = load_classbench_file(rules_file)
        capture = tmp_path / "trace.pcap"
        write_pcap(str(capture), generate_trace(ruleset, count=300, seed=8), seed=9)
        return rules_file, capture

    def test_export_then_import_round_trip(self, tmp_path, workload_files, capsys):
        rules_file, _ = workload_files
        dump = tmp_path / "acl.iptables"
        capsys.readouterr()
        assert main(["export", "--rules", str(rules_file),
                     "--output", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "iptables export" in out and "Fidelity" in out
        assert dump.read_text().startswith("*filter\n")

        back = tmp_path / "back.rules"
        assert main(["import", str(dump), "--output", str(back)]) == 0
        out = capsys.readouterr().out
        assert "iptables import" in out
        assert main(["classify", "--rules", str(back), "--packets", "20"]) == 0

    def test_export_strict_mode_fails_on_inexpressible_rules(self, capsys):
        # Synthetic ACLs carry wildcard-protocol rules with port constraints,
        # which strict mode refuses to rewrite.
        assert main(["export", "--size", "200", "--seed", "1",
                     "--mode", "strict", "--output", "/dev/null"]) == 2
        assert "strict mode" in capsys.readouterr().err

    def test_import_reports_line_numbered_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.iptables"
        bad.write_text("-A FORWARD -i eth0 -j ACCEPT\n")
        assert main(["import", str(bad), "--output", str(tmp_path / "o")]) == 2
        assert "line 1:" in capsys.readouterr().err

    def test_replay_reports_capture_accounting(self, workload_files, capsys):
        rules_file, capture = workload_files
        capsys.readouterr()
        assert main(["replay", str(capture), "--rules", str(rules_file),
                     "--trace-ports", "word", "--fast", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "Capture replay" in out
        assert "300 packets, 0 non-IP skipped, 0 truncated" in out
        assert "configurablex2" in out

    def test_replay_missing_capture_clean_error(self, tmp_path, capsys):
        assert main(["replay", str(tmp_path / "no.pcap"), "--size", "100"]) == 2
        assert "no.pcap" in capsys.readouterr().err

    def test_classify_trace_matches_replay(self, workload_files, capsys):
        rules_file, capture = workload_files
        capsys.readouterr()
        assert main(["classify", "--rules", str(rules_file), "--trace",
                     str(capture), "--trace-ports", "word"]) == 0
        out = capsys.readouterr().out
        assert "Trace file" in out and "Packets classified" in out
        assert "300 packets" in out

    def test_classify_trace_conflicts_with_flows(self, workload_files, capsys):
        rules_file, capture = workload_files
        capsys.readouterr()
        assert main(["classify", "--rules", str(rules_file), "--trace",
                     str(capture), "--flows", "8"]) == 2
        assert "--flows" in capsys.readouterr().err

    def test_fabric_serves_a_capture(self, workload_files, capsys):
        rules_file, capture = workload_files
        capsys.readouterr()
        assert main(["fabric", "--switches", "4", "--rules", str(rules_file),
                     "--trace", str(capture), "--trace-ports", "word"]) == 0
        out = capsys.readouterr().out
        assert "Fabric simulation" in out and "Trace file" in out
        assert "Per-switch accounting" in out

"""Unit tests of the transactional control plane (repro.api.control).

Covers the Txn lifecycle, all-or-nothing commits with journalled rollback,
inverse deltas, RuleProgram diffing, the rebuild plane of the baselines,
epoch-stamped cache invalidation, delta-file parsing and the ParallelSession
broadcast path.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import create_classifier
from repro.api.control import (
    Delta,
    RuleProgram,
    Txn,
    TxnOp,
    parse_delta_lines,
)
from repro.core.classifier import ConfigurableClassifier
from repro.core.config import CombinerMode, IpAlgorithm
from repro.exceptions import UpdateError
from repro.perf import ParallelSession
from repro.rules.rule import Rule, RuleAction
from repro.rules.ruleset import RuleSet


def _rule_ids(plane) -> set:
    return {rule.rule_id for rule in plane.program().rules}


class TestTxnLifecycle:
    def test_stage_and_commit(self, handcrafted_ruleset, web_packet):
        rules = handcrafted_ruleset.rules()
        classifier = ConfigurableClassifier.from_ruleset(
            RuleSet(rules[1:], name="partial")
        )
        plane = classifier.control
        assert plane.version == 0 and plane.epoch == 0
        txn = plane.begin()
        assert txn.state == "open"
        commit = txn.insert(rules[0]).remove(rules[-1].rule_id).commit()
        assert txn.state == "committed"
        assert commit.version == plane.version == 1
        assert commit.epoch == plane.epoch == 1
        assert len(commit.results) == 2
        # The HPMR for the web packet is now rule 0.
        assert classifier.classify(web_packet).rule_id == 0

    def test_committed_txn_is_terminal(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        txn = classifier.control.begin().remove(4)
        txn.commit()
        with pytest.raises(UpdateError, match="committed"):
            txn.commit()
        with pytest.raises(UpdateError, match="committed"):
            txn.insert(handcrafted_ruleset.get(4))

    def test_abort_discards(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        txn = classifier.control.begin().remove(0)
        txn.abort()
        assert txn.state == "aborted"
        with pytest.raises(UpdateError, match="aborted"):
            txn.commit()
        assert 0 in _rule_ids(classifier.control)

    def test_free_standing_txn_needs_a_plane(self, handcrafted_ruleset):
        txn = Txn().remove(0)
        with pytest.raises(UpdateError, match="no control plane"):
            txn.commit()

    def test_reconfigure_validates_at_staging(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        txn = classifier.control.begin()
        with pytest.raises(ValueError):
            txn.reconfigure(ip_algorithm="nonsense")
        with pytest.raises(UpdateError, match="needs an ip_algorithm"):
            txn.reconfigure()

    def test_empty_commit_is_a_noop(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        commit = classifier.control.begin().commit()
        assert commit.version == 0 and commit.epoch == 0
        assert classifier.control.version == 0

    def test_delta_is_picklable(self, handcrafted_ruleset):
        delta = (
            Txn()
            .insert(handcrafted_ruleset.get(0))
            .remove(3)
            .reconfigure(ip_algorithm=IpAlgorithm.BST, combiner="first_label")
            .delta()
        )
        clone = pickle.loads(pickle.dumps(delta))
        assert clone == delta


class TestAtomicity:
    def test_failing_op_unwinds_the_prefix(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        reference = classifier.classify(web_packet)
        before_ids = _rule_ids(classifier.control)
        txn = classifier.control.begin()
        # Op 1 (remove 0) applies, op 2 (remove 0 again) must fail and
        # unwind op 1.
        txn.remove(0).remove(0)
        with pytest.raises(UpdateError):
            txn.commit()
        assert classifier.control.version == 0
        assert _rule_ids(classifier.control) == before_ids
        assert classifier.classify(web_packet) == reference

    def test_failed_reconfigure_sequence_restores_algorithm(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        txn = classifier.control.begin().reconfigure(ip_algorithm="bst").remove(999)
        with pytest.raises(UpdateError):
            txn.commit()
        assert classifier.config.ip_algorithm is IpAlgorithm.MBT

    def test_inverse_delta_round_trips(self, handcrafted_ruleset, web_packet, dns_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        ref = [classifier.classify(web_packet), classifier.classify(dns_packet)]
        commit = (
            classifier.control.begin()
            .remove(0)
            .reconfigure(ip_algorithm="bst", combiner=CombinerMode.FIRST_LABEL)
            .commit()
        )
        classifier.control.apply_delta(commit.inverse)
        assert classifier.config.ip_algorithm is IpAlgorithm.MBT
        assert classifier.config.combiner_mode is CombinerMode.CROSS_PRODUCT
        assert [classifier.classify(web_packet), classifier.classify(dns_packet)] == ref

    def test_fast_path_caches_track_commits(self, small_acl_ruleset, small_trace):
        """Epoch-stamped commits invalidate the memo layers, no listeners."""
        classifier = create_classifier("configurable", small_acl_ruleset, fast=True)
        classifier.classify_batch(small_trace)  # warm every cache
        victims = [rule.rule_id for rule in small_acl_ruleset.rules()[:5]]
        txn = classifier.control.begin()
        for rule_id in victims:
            txn.remove(rule_id)
        txn.commit()
        fast = classifier.classify_batch(small_trace)
        fresh = create_classifier(
            "configurable",
            RuleSet(
                (r for r in small_acl_ruleset.rules() if r.rule_id not in set(victims)),
                name="survivors",
            ),
        )
        assert [r.rule_id for r in fast] == [
            fresh.classify(p).rule_id for p in small_trace
        ]


class TestRuleProgram:
    def test_program_snapshot(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        program = classifier.control.program()
        assert program.version == 0
        assert program.rule_ids() == tuple(r.rule_id for r in handcrafted_ruleset)
        assert program.settings == {
            "ip_algorithm": "mbt",
            "combiner_mode": "cross_product",
        }

    def test_diff_produces_converging_delta(self, handcrafted_ruleset):
        rules = handcrafted_ruleset.rules()
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        target = RuleProgram(
            version=0,
            rules=tuple(rules[2:]),
            config=(("combiner_mode", "cross_product"), ("ip_algorithm", "bst")),
        )
        delta = classifier.control.program().diff(target)
        kinds = [op.kind for op in delta.ops]
        assert kinds.count("remove") == 2
        assert "reconfigure" in kinds
        classifier.control.apply_delta(delta)
        after = classifier.control.program()
        assert set(after.rule_ids()) == {r.rule_id for r in rules[2:]}
        assert after.settings["ip_algorithm"] == "bst"
        # Converged: diffing again is empty.
        assert not after.diff(target).ops

    def test_diff_ignores_descriptive_config_keys(self, handcrafted_ruleset):
        """Identity keys (a baseline's algorithm name) must not fabricate a
        reconfigure op no plane could apply."""
        a = create_classifier("bitvector", handcrafted_ruleset)
        b = create_classifier("dcfl", handcrafted_ruleset)
        delta = a.control.program().diff(b.control.program())
        assert not delta.ops
        # And an applicable delta still converges across engine kinds.
        a.control.begin().extend(delta).commit()

    def test_diff_replaces_changed_rule(self, handcrafted_ruleset):
        rules = handcrafted_ruleset.rules()
        changed = Rule.build(
            rules[0].rule_id, rules[0].priority, dst_port="443:443",
            protocol=6, action=RuleAction.FORWARD,
        )
        base = RuleProgram(version=0, rules=tuple(rules))
        target = RuleProgram(version=0, rules=(changed,) + tuple(rules[1:]))
        delta = base.diff(target)
        assert [op.kind for op in delta.ops] == ["remove", "insert"]
        assert delta.ops[0].rule_id == rules[0].rule_id
        assert delta.ops[1].rule.dst_port.low == 443


class TestRebuildControl:
    def test_multi_op_commit_rebuilds_once(self, handcrafted_ruleset, web_packet):
        adapter = create_classifier("linear_search", handcrafted_ruleset)
        plane = adapter.control
        engine_before = adapter.engine
        extra = Rule.build(99, 99, action=RuleAction.DROP)
        commit = plane.begin().insert(extra).remove(2).commit()
        assert commit.version == 1
        assert adapter.engine is not engine_before
        ids = _rule_ids(plane)
        assert 99 in ids and 2 not in ids
        assert adapter.classify(web_packet).rule_id == 0

    def test_reconfigure_rejected_without_side_effects(self, handcrafted_ruleset):
        adapter = create_classifier("linear_search", handcrafted_ruleset)
        engine_before = adapter.engine
        txn = adapter.control.begin().remove(0).reconfigure(ip_algorithm="bst")
        with pytest.raises(UpdateError, match="no\\s+runtime reconfiguration"):
            txn.commit()
        assert adapter.engine is engine_before
        assert 0 in _rule_ids(adapter.control)

    def test_staging_failure_leaves_engine_untouched(self, handcrafted_ruleset):
        adapter = create_classifier("linear_search", handcrafted_ruleset)
        engine_before = adapter.engine
        with pytest.raises(Exception):
            adapter.control.begin().insert(handcrafted_ruleset.get(0)).commit()
        assert adapter.engine is engine_before
        assert adapter.control.version == 0


class TestDeltaFiles:
    def test_parse_round_trip(self, handcrafted_ruleset):
        program = RuleProgram(version=0, rules=tuple(handcrafted_ruleset.rules()))
        delta = parse_delta_lines(
            [
                "# comment",
                "",
                "- 3",
                "+ @10.0.0.0/8 192.168.0.0/16 0 : 65535 80 : 80 0x06/0xFF",
                "! ip_algorithm=bst",
                "! combiner=first_label",
            ],
            program,
        )
        kinds = [op.kind for op in delta.ops]
        assert kinds == ["remove", "insert", "reconfigure", "reconfigure"]
        inserted = delta.ops[1].rule
        # Fresh id/priority beyond everything installed.
        assert inserted.rule_id == 5 and inserted.priority == 5

    def test_parse_rejects_garbage(self, handcrafted_ruleset):
        program = RuleProgram(version=0, rules=tuple(handcrafted_ruleset.rules()))
        with pytest.raises(UpdateError, match="line 1"):
            parse_delta_lines(["? what"], program)
        with pytest.raises(UpdateError, match="bad rule id"):
            parse_delta_lines(["- notanumber"], program)
        with pytest.raises(UpdateError, match="unknown setting"):
            parse_delta_lines(["! colour=blue"], program)
        with pytest.raises(UpdateError, match="line 1: bad ip_algorithm"):
            parse_delta_lines(["! ip_algorithm=typo"], program)
        with pytest.raises(UpdateError, match="line 1: bad combiner"):
            parse_delta_lines(["! combiner=typo"], program)


class TestSessionBroadcast:
    def test_commit_result_rebroadcast(self, handcrafted_ruleset, web_packet):
        """A commit on a primary propagates to a pool via apply()."""
        primary = create_classifier("configurable", handcrafted_ruleset)
        commit = primary.control.begin().remove(0).commit()
        replicas = [
            create_classifier("configurable", handcrafted_ruleset, fast=True)
            for _ in range(2)
        ]
        with ParallelSession(replicas, chunk_size=4) as pool:
            pool.apply(commit)
            assert pool.control.version == 1
            fed = pool.feed([web_packet])
            assert fed.results[0].rule_id == primary.classify(web_packet).rule_id

    def test_apply_rejects_foreign_types(self, handcrafted_ruleset):
        from repro.exceptions import ConfigurationError

        replicas = [create_classifier("configurable", handcrafted_ruleset)]
        with ParallelSession(replicas, chunk_size=4) as pool:
            with pytest.raises(ConfigurationError, match="Txn, Delta or CommitResult"):
                pool.apply(["not", "a", "delta"])

    def test_closed_session_refuses_transactions(self, handcrafted_ruleset):
        from repro.exceptions import ConfigurationError

        replicas = [create_classifier("configurable", handcrafted_ruleset)]
        pool = ParallelSession(replicas, chunk_size=4)
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.begin()
        with pytest.raises(ConfigurationError, match="closed"):
            pool.apply(Delta((TxnOp(kind="remove", rule_id=0),)))

    def test_pre_close_txn_cannot_resurrect_workers(self, handcrafted_ruleset):
        """close() is terminal: a transaction opened before it must not
        restart worker pools when committed afterwards."""
        from repro.exceptions import ConfigurationError

        replicas = [create_classifier("configurable", handcrafted_ruleset)]
        pool = ParallelSession(replicas, chunk_size=4)
        txn = pool.begin().remove(0)
        pool.close()
        with pytest.raises(ConfigurationError, match="closed"):
            txn.commit()
        # Nothing was applied and no executor was re-created.
        assert 0 in {rule.rule_id for rule in replicas[0].control.program().rules}
        assert all(worker._executor is None for worker in pool._workers)

    def test_free_standing_txn_rolls_out_to_several_pools(self, handcrafted_ruleset):
        """apply() snapshots an unbound Txn instead of consuming it."""
        txn = Txn().remove(0)
        pools = [
            ParallelSession(
                [create_classifier("configurable", handcrafted_ruleset)], chunk_size=4
            )
            for _ in range(2)
        ]
        try:
            for pool in pools:
                pool.apply(txn)
                assert 0 not in {
                    rule.rule_id for rule in pool.control.program().rules
                }
            assert txn.state == "open"  # still the caller's to reuse or abort
        finally:
            for pool in pools:
                pool.close()

    def test_txn_bound_elsewhere_rejected(self, handcrafted_ruleset):
        from repro.exceptions import ConfigurationError

        primary = create_classifier("configurable", handcrafted_ruleset)
        foreign = primary.control.begin().remove(0)
        replicas = [create_classifier("configurable", handcrafted_ruleset)]
        with ParallelSession(replicas, chunk_size=4) as pool:
            with pytest.raises(ConfigurationError, match="another control plane"):
                pool.apply(foreign)


class TestSwitchIntegration:
    def test_flow_mod_failure_keeps_program_version(self, handcrafted_ruleset):
        from repro.controller.channel import ControlChannel
        from repro.controller.openflow import FlowMod, FlowModCommand
        from repro.controller.switch import Switch

        switch = Switch(datapath_id=1, channel=ControlChannel("t"))
        for rule in handcrafted_ruleset:
            switch.classifier.install(rule)
        channel = switch.channel
        channel.send_to_switch(
            FlowMod(command=FlowModCommand.DELETE, rule_id=12345, xid=7)
        )
        switch.process_control_messages()
        reply = channel.receive_from_switch()
        assert not reply.success
        assert switch.stats.flow_mods_failed == 1
        assert switch.classifier.control.version == 0

    def test_stats_reply_carries_program_version(self, handcrafted_ruleset):
        from repro.controller.controller import SdnController

        controller = SdnController()
        controller.add_switch(1)
        controller.push_ruleset(1, handcrafted_ruleset)
        stats = controller.request_stats(1)
        assert stats["program_version"] == len(handcrafted_ruleset)
        assert stats["program_epoch"] == len(handcrafted_ruleset)

    def test_sync_ruleset_converges_minimal(self, handcrafted_ruleset):
        from repro.controller.controller import SdnController

        controller = SdnController()
        controller.add_switch(1)
        controller.push_ruleset(1, handcrafted_ruleset)
        target = RuleSet(handcrafted_ruleset.rules()[1:4], name="target")
        report = controller.sync_ruleset(1, target)
        # 2 removals (rules 0 and 4), nothing re-pushed for the survivors.
        assert report.requested == 2
        assert report.accepted == 2
        program = controller.switch(1).classifier.control.program()
        assert set(program.rule_ids()) == {1, 2, 3}
        # Converged: a second sync sends nothing.
        assert controller.sync_ruleset(1, target).requested == 0

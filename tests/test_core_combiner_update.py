"""Unit tests for the label combiner and the incremental update engine."""

from __future__ import annotations

import pytest

from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm
from repro.core.dimensions import DIMENSIONS, rule_dimension_specs
from repro.core.label_combiner import LabelCombiner
from repro.core.update_engine import HASH_CYCLES, RULE_UPLOAD_CYCLES
from repro.exceptions import ConfigurationError, UpdateError
from repro.hardware.hash_unit import LabelKeyLayout
from repro.hardware.rule_filter import RuleFilterMemory
from repro.rules.rule import Rule


def _matches(**labels):
    """Build a full per-dimension match mapping with defaults of one label."""
    base = {name: ((0, 0),) for name in DIMENSIONS}
    base.update(labels)
    return base


class TestLabelCombiner:
    def make_combiner(self, mode=CombinerMode.CROSS_PRODUCT, probe_budget=4096):
        layout = LabelKeyLayout()
        rule_filter = RuleFilterMemory(capacity=64)
        return LabelCombiner(rule_filter, layout, mode=mode, probe_budget=probe_budget), layout, rule_filter

    def test_missing_dimension_rejected(self):
        combiner, _, _ = self.make_combiner()
        with pytest.raises(ConfigurationError):
            combiner.combine({"src_ip_hi": ((0, 0),)})

    def test_empty_field_list_is_a_miss(self):
        combiner, _, _ = self.make_combiner()
        outcome = combiner.combine(_matches(protocol=()))
        assert outcome.entry is None
        assert outcome.probes == 0

    def test_cross_product_finds_best_priority(self):
        combiner, layout, rule_filter = self.make_combiner()
        # Two rules share every label except dst_port.
        key_a = layout.pack((1, 0, 0, 0, 0, 5, 0))
        key_b = layout.pack((1, 0, 0, 0, 0, 6, 0))
        rule_filter.insert(key_a, Rule.build(10, 10))
        rule_filter.insert(key_b, Rule.build(3, 3))
        outcome = combiner.combine(
            _matches(src_ip_hi=((1, 3),), dst_port=((5, 10), (6, 3)))
        )
        assert outcome.entry is not None and outcome.entry.rule_id == 3
        assert outcome.probes >= 1

    def test_cross_product_prunes_with_priority_bound(self):
        combiner, layout, rule_filter = self.make_combiner()
        best_key = layout.pack((1, 0, 0, 0, 0, 0, 0))
        rule_filter.insert(best_key, Rule.build(0, 0))
        # Many worse-priority candidate labels on dst_port: once the priority-0
        # rule is found, combinations whose bound is >= 0 are skipped.
        matches = _matches(
            src_ip_hi=((1, 0),),
            dst_port=tuple((label, label) for label in range(0, 30)),
        )
        outcome = combiner.combine(matches)
        assert outcome.entry.rule_id == 0
        assert outcome.probes < 30

    def test_probe_budget_caps_work(self):
        combiner, _, _ = self.make_combiner(probe_budget=5)
        matches = _matches(dst_port=tuple((label, 10 + label) for label in range(50)))
        outcome = combiner.combine(matches)
        assert outcome.probes <= 5

    def test_probe_budget_truncation_is_flagged(self):
        combiner, _, _ = self.make_combiner(probe_budget=5)
        matches = _matches(dst_port=tuple((label, 10 + label) for label in range(50)))
        outcome = combiner.combine(matches)
        assert outcome.truncated

    def test_prunable_tail_after_budget_not_flagged(self):
        # The budget is hit after three probes, but every remaining
        # combination is pruned by the priority bound of the found rule:
        # the result is provably exact, so no truncation warning.
        combiner, layout, rule_filter = self.make_combiner(probe_budget=3)
        rule_filter.insert(layout.pack((0, 0, 0, 0, 0, 10, 0)), Rule.build(3, 3))
        matches = _matches(
            dst_port=((10, 0), (11, 1), (12, 2), (13, 10), (14, 11), (15, 12))
        )
        outcome = combiner.combine(matches)
        assert outcome.probes == 3
        assert outcome.entry.rule_id == 3
        assert not outcome.truncated

    def test_candidate_tail_after_budget_is_flagged(self):
        # Same walk, but one unvisited combination could still beat the best
        # entry found: that is a real truncation.
        combiner, layout, rule_filter = self.make_combiner(probe_budget=3)
        rule_filter.insert(layout.pack((0, 0, 0, 0, 0, 10, 0)), Rule.build(5, 5))
        matches = _matches(
            dst_port=((10, 0), (11, 1), (12, 2), (13, 4), (14, 11), (15, 12))
        )
        outcome = combiner.combine(matches)
        assert outcome.probes == 3
        assert outcome.truncated

    def test_exact_budget_exhaustion_not_flagged(self):
        # Three combinations, budget of exactly three: every combination is
        # probed, so the outcome is exact and must not carry the warning.
        combiner, _, _ = self.make_combiner(probe_budget=3)
        matches = _matches(dst_port=tuple((label, 10 + label) for label in range(3)))
        outcome = combiner.combine(matches)
        assert outcome.probes == 3
        assert not outcome.truncated

    def test_untruncated_walk_not_flagged(self):
        combiner, layout, rule_filter = self.make_combiner()
        rule_filter.insert(layout.pack((1, 0, 0, 0, 0, 0, 0)), Rule.build(1, 1))
        outcome = combiner.combine(_matches(src_ip_hi=((1, 1),)))
        assert not outcome.truncated

    def test_first_label_single_probe(self):
        combiner, layout, rule_filter = self.make_combiner(mode=CombinerMode.FIRST_LABEL)
        key = layout.pack((2, 0, 0, 0, 0, 0, 0))
        rule_filter.insert(key, Rule.build(1, 1))
        outcome = combiner.combine(_matches(src_ip_hi=((2, 1), (3, 2))))
        assert outcome.probes == 1
        assert outcome.entry.rule_id == 1

    def test_first_label_can_miss_real_match(self):
        combiner, layout, rule_filter = self.make_combiner(mode=CombinerMode.FIRST_LABEL)
        # The stored rule uses the SECOND-best src label, so the fast path misses.
        key = layout.pack((3, 0, 0, 0, 0, 0, 0))
        rule_filter.insert(key, Rule.build(1, 1))
        outcome = combiner.combine(_matches(src_ip_hi=((2, 1), (3, 2))))
        assert outcome.entry is None

    def test_invalid_probe_budget(self):
        with pytest.raises(ConfigurationError):
            self.make_combiner(probe_budget=0)


class TestUpdateEngine:
    def make_classifier(self, **kwargs):
        return ConfigurableClassifier(ClassifierConfig(**kwargs))

    def test_insert_returns_per_dimension_labels(self, handcrafted_ruleset):
        classifier = self.make_classifier()
        result = classifier.install_rule(handcrafted_ruleset.get(0))
        assert set(result.labels) == set(DIMENSIONS)
        assert result.operation == "insert"
        assert all(created for _, created in result.labels.values())
        assert result.structural

    def test_second_rule_reuses_labels(self, handcrafted_ruleset):
        classifier = self.make_classifier()
        classifier.install_rule(handcrafted_ruleset.get(0))
        result = classifier.install_rule(handcrafted_ruleset.get(1))
        # Rule 1 shares src prefix, dst prefix, src port and protocol with rule 0.
        assert not result.labels["src_ip_hi"][1]
        assert not result.labels["protocol"][1]
        assert result.labels["dst_port"][1]  # 0:1023 is a new port value

    def test_fixed_upload_cost_constants(self):
        assert RULE_UPLOAD_CYCLES == 2
        assert HASH_CYCLES == 1

    def test_insert_cycles_include_upload_and_hash(self, handcrafted_ruleset):
        classifier = self.make_classifier()
        result = classifier.install_rule(handcrafted_ruleset.get(0))
        assert result.cycles.phases["rule_upload"] == RULE_UPLOAD_CYCLES
        assert result.cycles.phases["hash"] == HASH_CYCLES

    def test_duplicate_insert_rejected(self, handcrafted_ruleset):
        classifier = self.make_classifier()
        classifier.install_rule(handcrafted_ruleset.get(0))
        with pytest.raises(UpdateError):
            classifier.install_rule(handcrafted_ruleset.get(0))

    def test_delete_unknown_rejected(self):
        with pytest.raises(UpdateError):
            self.make_classifier().remove_rule(5)

    def test_delete_releases_labels_only_at_zero(self, handcrafted_ruleset):
        classifier = self.make_classifier()
        classifier.install_rule(handcrafted_ruleset.get(0))
        classifier.install_rule(handcrafted_ruleset.get(1))
        first = classifier.remove_rule(0)
        # src prefix 10.0.0.0/8 is still used by rule 1: counter-only delete.
        assert not first.labels["src_ip_hi"][1]
        second = classifier.remove_rule(1)
        # now the label disappears for good
        assert second.labels["src_ip_hi"][1]

    def test_delete_then_lookup_matches_reference(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        classifier.remove_rule(0)
        result = classifier.classify(web_packet)
        remaining = handcrafted_ruleset.filter(lambda rule: rule.rule_id != 0)
        assert result.rule_id == remaining.highest_priority_match(web_packet).rule_id

    def test_reinsert_after_delete(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        rule = handcrafted_ruleset.get(0)
        classifier.remove_rule(0)
        classifier.install_rule(rule)
        assert classifier.classify(web_packet).rule_id == 0

    def test_capacity_enforced(self, handcrafted_ruleset):
        tiny = ClassifierConfig()
        from dataclasses import replace

        provisioning = replace(tiny.provisioning, rule_filter_entries=2)
        config = replace(tiny, provisioning=provisioning)
        classifier = ConfigurableClassifier(config)
        classifier.install_rule(handcrafted_ruleset.get(0))
        classifier.install_rule(handcrafted_ruleset.get(1))
        with pytest.raises(UpdateError):
            classifier.install_rule(handcrafted_ruleset.get(2))

    def test_priority_improvement_reorders_hpml(self):
        classifier = self.make_classifier()
        low_priority = Rule.build(10, 10, src="10.0.0.0/8", protocol=6)
        high_priority = Rule.build(1, 1, src="10.0.0.0/8", protocol=6, dst="1.2.3.0/24")
        classifier.install_rule(low_priority)
        classifier.install_rule(high_priority)
        # The shared src_ip_hi label must now carry priority 1 as its best.
        spec = rule_dimension_specs(high_priority)["src_ip_hi"]
        table = classifier.label_tables["src_ip_hi"]
        assert table.best_priority_of(table.label_of(spec)) == 1

    def test_delete_recomputes_best_priority(self):
        classifier = self.make_classifier()
        high = Rule.build(1, 1, src="10.0.0.0/8", protocol=6)
        low = Rule.build(10, 10, src="10.0.0.0/8", protocol=17)
        classifier.install_rule(high)
        classifier.install_rule(low)
        classifier.remove_rule(1)
        spec = rule_dimension_specs(low)["src_ip_hi"]
        table = classifier.label_tables["src_ip_hi"]
        assert table.best_priority_of(table.label_of(spec)) == 10

    def test_rule_key_round_trip(self, handcrafted_ruleset):
        classifier = self.make_classifier()
        classifier.install_rule(handcrafted_ruleset.get(0))
        key = classifier.update_engine.rule_key(0)
        assert classifier.rule_filter.lookup(key).entry.rule_id == 0
        with pytest.raises(UpdateError):
            classifier.update_engine.rule_key(77)

    def test_installed_rule_ids(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        assert classifier.update_engine.installed_rule_ids() == [0, 1, 2, 3, 4]

    def test_update_statistics_structure(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        stats = classifier.update_engine.update_statistics()
        assert set(stats) == set(DIMENSIONS)
        assert stats["src_port"]["structural_inserts"] == 1

    def test_bst_configuration_updates_work(self, handcrafted_ruleset, web_packet):
        classifier = ConfigurableClassifier.from_ruleset(
            handcrafted_ruleset, ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
        )
        classifier.remove_rule(0)
        classifier.install_rule(handcrafted_ruleset.get(0))
        assert classifier.classify(web_packet).rule_id == 0


class TestInsertAtomicity:
    """A failed insert must leave the classifier exactly as it found it.

    Regression tests for the Fig. 4 update path: a CapacityError out of the
    Rule Filter (or an engine refusing a value mid-way through the seven
    dimensions) used to leave the label tables, engines and reference sets
    permanently corrupted.
    """

    def _snapshot(self, classifier, packets):
        return {
            "stats": classifier.stats(),
            "update_stats": classifier.update_engine.update_statistics(),
            "installed": classifier.update_engine.installed_rule_ids(),
            "memory": classifier.memory_bits_used(),
            "label_entries": {
                dimension: [
                    (value, entry.label, entry.counter, entry.best_priority)
                    for value, entry in classifier.label_tables[dimension].entries()
                ]
                for dimension in DIMENSIONS
            },
            "value_users": {
                dimension: {
                    value: set(users)
                    for value, users in classifier.update_engine._value_users[dimension].items()
                }
                for dimension in DIMENSIONS
            },
            "lookups": [classifier.classify(packet) for packet in packets],
        }

    def test_rule_filter_capacity_error_rolls_back(self, handcrafted_ruleset, web_packet):
        from repro.exceptions import CapacityError

        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        before = self._snapshot(classifier, [web_packet])

        def full(key, rule):
            raise CapacityError("rule filter probing exhausted (simulated)")

        classifier.rule_filter.insert = full
        probe = Rule.build(99, 0, src="10.9.0.0/16", dst="172.16.0.0/12",
                           src_port="1000:2000", dst_port="443:443", protocol=6)
        try:
            with pytest.raises(CapacityError):
                classifier.install_rule(probe)
        finally:
            del classifier.rule_filter.insert  # restore the real method
        assert self._snapshot(classifier, [web_packet]) == before
        # The classifier is still fully functional: the same rule installs
        # cleanly once capacity is available again.
        result = classifier.install_rule(probe)
        assert result.rule_id == 99
        assert classifier.installed_rules == len(handcrafted_ruleset) + 1

    def test_rollback_restores_shared_value_priority(self, web_packet):
        """A failed insert must undo the HPML reordering of shared values."""
        from repro.core.dimensions import packet_dimension_values
        from repro.exceptions import CapacityError

        classifier = ConfigurableClassifier()
        low = Rule.build(10, 10, src="10.0.0.0/8", protocol=6)
        classifier.install_rule(low)
        before = self._snapshot(classifier, [web_packet])
        values = packet_dimension_values(web_packet)
        engine_before = classifier.engines["src_ip_hi"].lookup(values["src_ip_hi"])

        classifier.rule_filter.insert = lambda key, rule: (_ for _ in ()).throw(
            CapacityError("simulated full filter")
        )
        better = Rule.build(1, 1, src="10.0.0.0/8", protocol=6, dst="1.2.3.0/24")
        try:
            with pytest.raises(CapacityError):
                classifier.install_rule(better)
        finally:
            del classifier.rule_filter.insert
        assert self._snapshot(classifier, [web_packet]) == before
        assert classifier.engines["src_ip_hi"].lookup(values["src_ip_hi"]) == engine_before

    def test_engine_failure_mid_insert_rolls_back(self, web_packet):
        """Port register exhaustion on dimension six unwinds dimensions 1-5."""
        from dataclasses import replace

        from repro.exceptions import FieldLookupError

        config = ClassifierConfig()
        config = replace(config, provisioning=replace(config.provisioning, port_registers=1))
        classifier = ConfigurableClassifier(config)
        classifier.install_rule(Rule.build(0, 0, src="10.0.0.0/8", dst_port="80:80", protocol=6))
        before = self._snapshot(classifier, [web_packet])
        overflow = Rule.build(1, 1, src="10.2.0.0/16", dst_port="53:53", protocol=17)
        with pytest.raises(FieldLookupError):
            classifier.install_rule(overflow)
        assert self._snapshot(classifier, [web_packet]) == before

"""Unit tests for the ClassBench-style generator, the parser and the trace tools."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError, RuleSetError
from repro.rules.classbench import (
    ClassBenchGenerator,
    FilterFlavor,
    PAPER_RULE_COUNTS,
    generate_ruleset,
)
from repro.rules.parser import (
    dump_classbench_file,
    format_classbench,
    load_classbench_file,
    parse_classbench,
    parse_classbench_line,
)
from repro.rules.ruleset import RuleSet
from repro.rules.trace import generate_trace, generate_uniform_trace, trace_stats


class TestClassBenchGenerator:
    def test_deterministic_given_seed(self):
        first = ClassBenchGenerator(FilterFlavor.ACL, seed=5).generate(300)
        second = ClassBenchGenerator(FilterFlavor.ACL, seed=5).generate(300)
        assert [str(rule) for rule in first] == [str(rule) for rule in second]

    def test_different_seeds_differ(self):
        first = ClassBenchGenerator(FilterFlavor.ACL, seed=5).generate(300)
        second = ClassBenchGenerator(FilterFlavor.ACL, seed=6).generate(300)
        assert [str(rule) for rule in first] != [str(rule) for rule in second]

    def test_nominal_1k_matches_paper_count(self):
        assert len(generate_ruleset(FilterFlavor.ACL, 1000)) == PAPER_RULE_COUNTS[(FilterFlavor.ACL, 1000)]

    @pytest.mark.parametrize("flavor", list(FilterFlavor))
    def test_every_flavor_produces_valid_rules(self, flavor):
        ruleset = ClassBenchGenerator(flavor, seed=1).generate(200)
        assert len(ruleset) > 100
        for rule in ruleset:
            assert 0 <= rule.src_prefix.length <= 32
            assert rule.src_port.low <= rule.src_port.high

    def test_priorities_are_dense_and_unique(self):
        ruleset = generate_ruleset(FilterFlavor.ACL, 500, seed=9)
        priorities = [rule.priority for rule in ruleset.rules()]
        assert priorities == sorted(set(priorities))

    def test_acl_source_port_always_wildcard(self):
        ruleset = generate_ruleset(FilterFlavor.ACL, 500, seed=4)
        assert ruleset.unique_field_values("src_port") == 1
        assert all(rule.src_port.is_wildcard for rule in ruleset)

    def test_acl_protocol_values_limited(self):
        ruleset = generate_ruleset(FilterFlavor.ACL, 500, seed=4)
        assert ruleset.unique_field_values("protocol") <= 3

    def test_fw_has_more_wildcards_than_acl(self):
        acl = generate_ruleset(FilterFlavor.ACL, 1000, seed=3)
        fw = generate_ruleset(FilterFlavor.FW, 1000, seed=3)
        acl_wild = acl.stats().wildcard_field_counts["src_ip"] / len(acl)
        fw_wild = fw.stats().wildcard_field_counts["src_ip"] / len(fw)
        assert fw_wild > acl_wild

    def test_field_value_reuse_is_heavy(self):
        # The label method depends on rules sharing field values; the ACL
        # profile reuses destination ports and protocols heavily.
        ruleset = generate_ruleset(FilterFlavor.ACL, 1000, seed=2)
        assert ruleset.unique_field_values("dst_port") < len(ruleset) / 4

    def test_rules_unique_as_tuples(self):
        ruleset = generate_ruleset(FilterFlavor.ACL, 300, seed=8)
        signatures = {tuple(sorted(rule.field_keys().items())) for rule in ruleset}
        assert len(signatures) == len(ruleset)

    def test_invalid_size_raises(self):
        with pytest.raises(RuleSetError):
            generate_ruleset(FilterFlavor.ACL, 0)

    def test_custom_name(self):
        assert generate_ruleset(FilterFlavor.ACL, 200, name="custom").name == "custom"

    def test_port_labels_fit_the_paper_widths(self):
        # The 7-bit port label space must accommodate every flavour's unique
        # port specifications (the architecture's label width constraint).
        for flavor in FilterFlavor:
            ruleset = ClassBenchGenerator(flavor, seed=12).generate(1000)
            assert ruleset.unique_field_values("dst_port") <= 128
            assert ruleset.unique_field_values("src_port") <= 128


class TestClassBenchParser:
    EXAMPLE = "@192.168.1.0/24\t10.0.0.0/8\t0 : 65535\t7812 : 7812\t0x06/0xFF"

    def test_parse_line(self):
        rule = parse_classbench_line(self.EXAMPLE, rule_id=0, priority=0)
        assert rule.src_prefix.length == 24
        assert rule.dst_port.is_exact and rule.dst_port.low == 7812
        assert rule.protocol.value == 6 and not rule.protocol.wildcard

    def test_parse_line_wildcard_protocol(self):
        line = "@0.0.0.0/0\t0.0.0.0/0\t0 : 65535\t0 : 65535\t0x00/0x00"
        rule = parse_classbench_line(line, 0, 0)
        assert rule.protocol.wildcard

    def test_parse_line_keeps_extra_columns(self):
        rule = parse_classbench_line(self.EXAMPLE + "\t0x0000/0x0000", 0, 0)
        assert "extra" in rule.metadata

    def test_parse_malformed_raises(self):
        with pytest.raises(RuleSetError):
            parse_classbench_line("not a rule", 0, 0)

    def test_parse_many_skips_comments_and_blanks(self):
        lines = ["# header", "", self.EXAMPLE, self.EXAMPLE.replace("7812", "53")]
        ruleset = parse_classbench(lines, name="test")
        assert len(ruleset) == 2
        assert ruleset.rules()[0].priority == 0

    def test_round_trip_through_text(self, small_acl_ruleset):
        lines = [format_classbench(rule) for rule in small_acl_ruleset]
        parsed = parse_classbench(lines)
        assert len(parsed) == len(small_acl_ruleset)
        for original, reparsed in zip(small_acl_ruleset, parsed):
            assert original.field_keys() == reparsed.field_keys()

    def test_file_round_trip(self, tmp_path, small_acl_ruleset):
        path = tmp_path / "acl1.rules"
        dump_classbench_file(small_acl_ruleset, path)
        loaded = load_classbench_file(path)
        assert len(loaded) == len(small_acl_ruleset)
        assert loaded.name == "acl1"


class TestTraceGeneration:
    def test_deterministic(self, small_acl_ruleset):
        assert generate_trace(small_acl_ruleset, 50, seed=1) == generate_trace(small_acl_ruleset, 50, seed=1)

    def test_hit_ratio_respected(self, small_acl_ruleset):
        trace = generate_trace(small_acl_ruleset, 300, seed=2, hit_ratio=1.0)
        stats = trace_stats(small_acl_ruleset, trace)
        assert stats.hit_ratio == 1.0

    def test_zero_hit_ratio_allows_empty_ruleset(self):
        trace = generate_trace(RuleSet(name="empty"), 10, seed=3, hit_ratio=0.0)
        assert len(trace) == 10

    def test_hit_biased_trace_needs_rules(self):
        with pytest.raises(ExperimentError):
            generate_trace(RuleSet(name="empty"), 10, seed=3, hit_ratio=0.5)

    def test_locality_repeats_headers(self, small_acl_ruleset):
        trace = generate_trace(small_acl_ruleset, 200, seed=4, locality=0.8)
        assert len(set(trace)) < len(trace) / 2

    def test_invalid_parameters_raise(self, small_acl_ruleset):
        with pytest.raises(ExperimentError):
            generate_trace(small_acl_ruleset, -1)
        with pytest.raises(ExperimentError):
            generate_trace(small_acl_ruleset, 10, hit_ratio=1.5)
        with pytest.raises(ExperimentError):
            generate_trace(small_acl_ruleset, 10, locality=1.0)

    def test_uniform_trace(self):
        trace = generate_uniform_trace(50, seed=5)
        assert len(trace) == 50
        assert len(set(trace)) > 40

    def test_uniform_trace_negative_raises(self):
        with pytest.raises(ExperimentError):
            generate_uniform_trace(-5)

    def test_trace_stats_counts_distinct_rules(self, small_acl_ruleset):
        trace = generate_trace(small_acl_ruleset, 150, seed=6, hit_ratio=1.0)
        stats = trace_stats(small_acl_ruleset, trace)
        assert stats.packets == 150
        assert stats.hits + stats.misses == 150
        assert 0 < stats.distinct_rules_hit <= len(small_acl_ruleset)

"""Tests for exporting the classifier state as a control-plane memory image."""

from __future__ import annotations


from repro.core.classifier import ConfigurableClassifier
from repro.core.config import ClassifierConfig, IpAlgorithm
from repro.hardware.memory_image import MemoryImage


class TestMemoryImageExport:
    def test_image_covers_rules_and_labels(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        image = classifier.export_memory_image()
        writes = image.writes_per_block()
        assert writes["rule_filter"] == len(handcrafted_ruleset)
        # One write per unique field value of every dimension.
        assert writes["protocol_lut"] == handcrafted_ruleset.unique_field_values("protocol")
        assert writes["dst_port_label_buffer"] == handcrafted_ruleset.unique_field_values("dst_port")
        assert any(block.endswith("_labels") for block in image.blocks())

    def test_image_round_trips_through_binary_form(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        image = classifier.export_memory_image(name="snapshot")
        decoded = MemoryImage.from_bytes(image.to_bytes(), name="copy")
        assert len(decoded) == len(image)
        assert decoded.blocks() == image.blocks()

    def test_image_applies_to_provisioned_bank(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(handcrafted_ruleset)
        bank = classifier.provisioned_memory_bank()
        words, blocks = classifier.export_memory_image().apply(bank)
        assert words == len(classifier.export_memory_image())
        assert blocks >= 3
        assert bank.get("rule_filter").used_words == len(handcrafted_ruleset)

    def test_bst_configuration_exports_too(self, handcrafted_ruleset):
        classifier = ConfigurableClassifier.from_ruleset(
            handcrafted_ruleset, ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
        )
        image = classifier.export_memory_image()
        assert "bst" in image.name
        assert image.writes_per_block()["rule_filter"] == len(handcrafted_ruleset)

    def test_empty_classifier_exports_empty_rule_filter(self):
        image = ConfigurableClassifier().export_memory_image()
        assert image.writes_per_block().get("rule_filter", 0) == 0

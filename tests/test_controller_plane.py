"""Unit and integration tests for the SDN control plane (OpenFlow-lite)."""

from __future__ import annotations

import pytest

from repro.controller import (
    ApplicationRequirements,
    BarrierReply,
    BarrierRequest,
    ConfigMod,
    ControlChannel,
    FlowMod,
    FlowModCommand,
    FlowModReply,
    SdnController,
    StatsReply,
    StatsRequest,
    Switch,
    decode_message,
    encode_message,
)
from repro.core.config import CombinerMode, IpAlgorithm
from repro.exceptions import ControlPlaneError
from repro.rules.rule import Rule
from repro.rules.trace import generate_trace


class TestOpenFlowMessages:
    def test_flow_mod_add_requires_rule(self):
        with pytest.raises(ControlPlaneError):
            FlowMod(command=FlowModCommand.ADD)

    def test_flow_mod_delete_requires_target(self):
        with pytest.raises(ControlPlaneError):
            FlowMod(command=FlowModCommand.DELETE)
        assert FlowMod(command=FlowModCommand.DELETE, rule_id=3).target_rule_id == 3

    def test_flow_mod_round_trip(self):
        rule = Rule.build(5, 2, src="10.0.0.0/8", dst_port="443:443", protocol=6)
        message = FlowMod(command=FlowModCommand.ADD, rule=rule, xid=9)
        decoded = decode_message(encode_message(message))
        assert decoded.command is FlowModCommand.ADD
        assert decoded.xid == 9
        assert decoded.rule.field_keys() == rule.field_keys()
        assert decoded.rule.action == rule.action

    def test_flow_mod_reply_round_trip(self):
        reply = FlowModReply(xid=4, rule_id=7, success=False, error="capacity")
        decoded = decode_message(encode_message(reply))
        assert decoded.rule_id == 7 and not decoded.success and decoded.error == "capacity"

    def test_config_mod_round_trip(self):
        message = ConfigMod(ip_algorithm=IpAlgorithm.BST, combiner_mode=CombinerMode.FIRST_LABEL, xid=2)
        decoded = decode_message(encode_message(message))
        assert decoded.ip_algorithm is IpAlgorithm.BST
        assert decoded.combiner_mode is CombinerMode.FIRST_LABEL

    def test_barrier_and_stats_round_trip(self):
        assert decode_message(encode_message(BarrierRequest(xid=1))).xid == 1
        assert decode_message(encode_message(BarrierReply(xid=2))).xid == 2
        assert decode_message(encode_message(StatsRequest(xid=3))).xid == 3
        reply = StatsReply(xid=4, stats={"rules_installed": 10})
        assert decode_message(encode_message(reply)).stats["rules_installed"] == 10

    def test_malformed_blob_rejected(self):
        with pytest.raises(ControlPlaneError):
            decode_message(b"this is not json")


class TestControlChannel:
    def test_fifo_ordering_and_stats(self):
        channel = ControlChannel()
        channel.send_to_switch(BarrierRequest(xid=1))
        channel.send_to_switch(BarrierRequest(xid=2))
        assert channel.pending_to_switch == 2
        first = channel.receive_from_controller()
        second = channel.receive_from_controller()
        assert (first.xid, second.xid) == (1, 2)
        assert channel.receive_from_controller() is None
        assert channel.stats.messages_to_switch == 2
        assert channel.stats.bytes_to_switch > 0

    def test_reverse_direction(self):
        channel = ControlChannel()
        channel.send_to_controller(BarrierReply(xid=7))
        assert channel.pending_to_controller == 1
        assert channel.receive_from_switch().xid == 7
        assert channel.receive_from_switch() is None

    def test_drain(self):
        channel = ControlChannel()
        for xid in range(3):
            channel.send_to_controller(BarrierReply(xid=xid))
        assert [message.xid for message in channel.drain_from_switch()] == [0, 1, 2]

    def test_require_empty(self):
        channel = ControlChannel()
        channel.require_empty()
        channel.send_to_switch(BarrierRequest())
        with pytest.raises(ControlPlaneError):
            channel.require_empty()

    def test_total_counters(self):
        channel = ControlChannel()
        channel.send_to_switch(BarrierRequest())
        channel.send_to_controller(BarrierReply())
        assert channel.stats.total_messages == 2
        assert channel.stats.total_bytes > 0


class TestSwitch:
    def make_switch(self):
        channel = ControlChannel()
        return Switch(datapath_id=1, channel=channel), channel

    def test_flow_mod_add_and_reply(self, handcrafted_ruleset):
        switch, channel = self.make_switch()
        channel.send_to_switch(FlowMod(command=FlowModCommand.ADD, rule=handcrafted_ruleset.get(0), xid=5))
        assert switch.process_control_messages() == 1
        reply = channel.receive_from_switch()
        assert isinstance(reply, FlowModReply) and reply.success and reply.xid == 5
        assert switch.classifier.installed_rules == 1
        assert switch.stats.flow_mods_applied == 1

    def test_flow_mod_failure_reported(self, handcrafted_ruleset):
        switch, channel = self.make_switch()
        channel.send_to_switch(FlowMod(command=FlowModCommand.DELETE, rule_id=42, xid=6))
        switch.process_control_messages()
        reply = channel.receive_from_switch()
        assert not reply.success and reply.error
        assert switch.stats.flow_mods_failed == 1

    def test_config_mod_reconfigures(self, handcrafted_ruleset):
        switch, channel = self.make_switch()
        for rule in handcrafted_ruleset:
            channel.send_to_switch(FlowMod(command=FlowModCommand.ADD, rule=rule))
        channel.send_to_switch(ConfigMod(ip_algorithm=IpAlgorithm.BST, xid=9))
        switch.process_control_messages()
        assert switch.classifier.config.ip_algorithm is IpAlgorithm.BST
        assert switch.stats.reconfigurations == 1
        replies = channel.drain_from_switch()
        assert isinstance(replies[-1], BarrierReply)

    def test_barrier_and_stats(self, handcrafted_ruleset):
        switch, channel = self.make_switch()
        channel.send_to_switch(BarrierRequest(xid=1))
        channel.send_to_switch(StatsRequest(xid=2))
        switch.process_control_messages()
        replies = channel.drain_from_switch()
        assert isinstance(replies[0], BarrierReply)
        assert isinstance(replies[1], StatsReply)
        assert replies[1].stats["rules_installed"] == 0

    def test_data_plane_counters(self, handcrafted_ruleset, web_packet, miss_packet):
        switch, channel = self.make_switch()
        for rule in handcrafted_ruleset:
            if rule.rule_id != 4:
                channel.send_to_switch(FlowMod(command=FlowModCommand.ADD, rule=rule))
        switch.process_control_messages()
        switch.classify(web_packet)
        switch.classify(miss_packet)
        assert switch.stats.packets_classified == 2
        assert switch.stats.packets_matched == 1
        assert switch.stats.match_ratio == pytest.approx(0.5)

    def test_process_limit(self, handcrafted_ruleset):
        switch, channel = self.make_switch()
        for rule in handcrafted_ruleset:
            channel.send_to_switch(FlowMod(command=FlowModCommand.ADD, rule=rule))
        assert switch.process_control_messages(limit=2) == 2
        assert channel.pending_to_switch == len(handcrafted_ruleset) - 2


class TestSdnController:
    def test_add_switch_and_duplicate_rejected(self):
        controller = SdnController()
        controller.add_switch(1)
        with pytest.raises(ControlPlaneError):
            controller.add_switch(1)
        with pytest.raises(ControlPlaneError):
            controller.switch(2)

    def test_push_ruleset_and_stats(self, small_acl_ruleset):
        controller = SdnController()
        switch = controller.add_switch(1)
        report = controller.push_ruleset(1, small_acl_ruleset)
        assert report.success
        assert report.accepted == len(small_acl_ruleset)
        assert report.total_update_cycles > 0
        stats = controller.request_stats(1)
        assert stats["rules_installed"] == len(small_acl_ruleset)
        assert switch.classifier.installed_rules == len(small_acl_ruleset)

    def test_push_rejection_reported(self, handcrafted_ruleset):
        controller = SdnController()
        controller.add_switch(1)
        controller.push_ruleset(1, handcrafted_ruleset)
        # pushing the same rules again must be rejected (duplicate ids)
        report = controller.push_ruleset(1, handcrafted_ruleset)
        assert report.rejected == len(handcrafted_ruleset)
        assert not report.success
        assert report.errors

    def test_remove_rule(self, handcrafted_ruleset):
        controller = SdnController()
        switch = controller.add_switch(1)
        controller.push_ruleset(1, handcrafted_ruleset)
        controller.remove_rule(1, 0)
        assert switch.classifier.installed_rules == len(handcrafted_ruleset) - 1
        with pytest.raises(ControlPlaneError):
            controller.remove_rule(1, 0)

    def test_barrier(self, handcrafted_ruleset):
        controller = SdnController()
        controller.add_switch(1)
        controller.barrier(1)  # must not raise

    def test_configure_switch(self, handcrafted_ruleset):
        controller = SdnController()
        switch = controller.add_switch(1)
        controller.push_ruleset(1, handcrafted_ruleset)
        controller.configure_switch(1, ip_algorithm=IpAlgorithm.BST)
        assert switch.classifier.config.ip_algorithm is IpAlgorithm.BST
        assert switch.classifier.installed_rules == len(handcrafted_ruleset)

    def test_select_ip_algorithm_policy(self):
        controller = SdnController()
        latency_app = ApplicationRequirements("video", min_throughput_gbps=40, expected_rules=1000, latency_critical=True)
        assert controller.select_ip_algorithm(latency_app) is IpAlgorithm.MBT
        big_app = ApplicationRequirements("firewall", min_throughput_gbps=1, expected_rules=10000)
        assert controller.select_ip_algorithm(big_app) is IpAlgorithm.BST
        small_app = ApplicationRequirements("small", min_throughput_gbps=1, expected_rules=100)
        assert controller.select_ip_algorithm(small_app) is IpAlgorithm.MBT

    def test_select_ip_algorithm_rejects_impossible(self):
        controller = SdnController()
        too_big = ApplicationRequirements("huge", expected_rules=50000)
        with pytest.raises(ControlPlaneError):
            controller.select_ip_algorithm(too_big)
        conflicted = ApplicationRequirements(
            "conflicted", expected_rules=10000, latency_critical=True, min_throughput_gbps=40
        )
        with pytest.raises(ControlPlaneError):
            controller.select_ip_algorithm(conflicted)

    def test_deploy_application_end_to_end(self, small_acl_ruleset):
        controller = SdnController()
        switch = controller.add_switch(1)
        app = ApplicationRequirements("video", min_throughput_gbps=40, expected_rules=len(small_acl_ruleset), latency_critical=True)
        report = controller.deploy_application(1, app, small_acl_ruleset)
        assert report.success
        trace = generate_trace(small_acl_ruleset, count=40, seed=5)
        for packet in trace:
            result = switch.classify(packet)
            expected = small_acl_ruleset.highest_priority_match(packet)
            assert result.rule_id == (expected.rule_id if expected else None)

    def test_channel_accessor(self):
        controller = SdnController()
        controller.add_switch(3)
        assert controller.channel(3).stats.total_messages == 0
        assert len(controller.switches()) == 1

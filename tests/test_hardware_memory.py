"""Unit tests for the memory-block model, memory sharing and memory images."""

from __future__ import annotations

import pytest

from repro.exceptions import CapacityError, ConfigurationError, MemoryModelError
from repro.hardware.memory import AccessCounter, MemoryBank, MemoryBlock
from repro.hardware.memory_image import MemoryImage, MemoryWrite
from repro.hardware.memory_sharing import SharedMemoryBank, SharedView


class TestAccessCounter:
    def test_counts_and_total(self):
        counter = AccessCounter()
        counter.reads += 3
        counter.writes += 2
        assert counter.total == 5
        assert counter.snapshot() == (3, 2)

    def test_reset(self):
        counter = AccessCounter(reads=4, writes=4)
        counter.reset()
        assert counter.total == 0


class TestMemoryBlock:
    def test_geometry_accounting(self):
        block = MemoryBlock("m", depth=128, width=36)
        assert block.total_bits == 128 * 36
        assert block.used_words == 0 and block.used_bits == 0
        block.write(3, "node")
        assert block.used_words == 1
        assert block.used_bits == 36
        assert block.occupancy == pytest.approx(1 / 128)

    def test_read_write_counters(self):
        block = MemoryBlock("m", depth=8, width=8)
        block.write(0, "a")
        assert block.read(0) == "a"
        assert block.counter.snapshot() == (1, 1)
        block.reset_counters()
        assert block.counter.total == 0

    def test_read_empty_word_returns_none(self):
        assert MemoryBlock("m", 8, 8).read(5) is None

    def test_out_of_range_address_raises(self):
        block = MemoryBlock("m", depth=4, width=8)
        with pytest.raises(MemoryModelError):
            block.read(4)
        with pytest.raises(MemoryModelError):
            block.write(-1, "x")

    def test_clear_and_clear_all(self):
        block = MemoryBlock("m", 4, 8)
        block.write(1, "x")
        block.clear(1)
        assert block.peek(1) is None
        block.write(2, "y")
        block.clear_all()
        assert len(block) == 0

    def test_allocate_finds_lowest_free(self):
        block = MemoryBlock("m", 3, 8)
        block.write(0, "a")
        assert block.allocate() == 1
        block.write(1, "b")
        block.write(2, "c")
        with pytest.raises(CapacityError):
            block.allocate()

    def test_peek_does_not_count(self):
        block = MemoryBlock("m", 4, 8)
        block.write(0, "a")
        block.reset_counters()
        assert block.peek(0) == "a"
        assert block.counter.total == 0

    def test_items_sorted(self):
        block = MemoryBlock("m", 8, 8)
        block.write(5, "e")
        block.write(1, "b")
        assert [address for address, _ in block.items()] == [1, 5]

    @pytest.mark.parametrize("depth,width", [(0, 8), (8, 0), (-1, 8)])
    def test_invalid_geometry_raises(self, depth, width):
        with pytest.raises(MemoryModelError):
            MemoryBlock("m", depth, width)


class TestMemoryBank:
    def make_bank(self):
        bank = MemoryBank("bank")
        bank.new_block("mbt_l1", 32, 68)
        bank.new_block("mbt_l2", 512, 68)
        bank.new_block("rule_filter", 1024, 96)
        return bank

    def test_total_bits(self):
        bank = self.make_bank()
        assert bank.total_bits == 32 * 68 + 512 * 68 + 1024 * 96

    def test_duplicate_name_rejected(self):
        bank = self.make_bank()
        with pytest.raises(MemoryModelError):
            bank.new_block("mbt_l1", 8, 8)

    def test_get_and_contains(self):
        bank = self.make_bank()
        assert bank.get("mbt_l2").depth == 512
        assert "rule_filter" in bank and "missing" not in bank
        with pytest.raises(MemoryModelError):
            bank.get("missing")

    def test_aggregate_counters(self):
        bank = self.make_bank()
        bank.get("mbt_l1").write(0, "a")
        bank.get("mbt_l2").read(0)
        assert bank.total_writes == 1
        assert bank.total_reads == 1
        assert bank.total_accesses == 2
        bank.reset_counters()
        assert bank.total_accesses == 0

    def test_access_and_utilisation_reports(self):
        bank = self.make_bank()
        bank.get("mbt_l1").write(0, "a")
        access = bank.access_report()
        assert access["mbt_l1"] == (0, 1)
        utilisation = bank.utilisation_report()
        assert utilisation["rule_filter"]["total_bits"] == 1024 * 96

    def test_find_and_subtotal(self):
        bank = self.make_bank()
        assert len(bank.find("mbt_")) == 2
        assert bank.subtotal_bits("mbt_") == 32 * 68 + 512 * 68

    def test_merge_counters(self):
        bank = self.make_bank()
        bank.get("mbt_l1").write(0, "a")
        bank.get("rule_filter").read(0)
        merged = bank.merge_counters()
        assert (merged.reads, merged.writes) == (1, 1)

    def test_len_and_iter(self):
        bank = self.make_bank()
        assert len(bank) == 3
        assert {block.name for block in bank} == {"mbt_l1", "mbt_l2", "rule_filter"}


class TestSharedMemoryBank:
    def make_shared(self):
        return SharedMemoryBank(
            name="shared",
            depth=512,
            width=68,
            view_a=SharedView("mbt_level2", "MBT level 2 nodes"),
            view_b=SharedView("bst_nodes", "BST nodes"),
            reclaimable_bits=400_000,
        )

    def test_default_selection_is_view_a(self):
        assert self.make_shared().active_view == "mbt_level2"

    def test_only_selected_view_can_access(self):
        shared = self.make_shared()
        shared.write("mbt_level2", 0, "node")
        with pytest.raises(MemoryModelError):
            shared.write("bst_nodes", 0, "node")
        with pytest.raises(MemoryModelError):
            shared.read("bst_nodes", 0)

    def test_switching_invalidates_contents(self):
        shared = self.make_shared()
        shared.write("mbt_level2", 7, "node")
        assert shared.select("bst_nodes") is True
        assert shared.read("bst_nodes", 7) is None

    def test_reselecting_same_view_is_noop(self):
        shared = self.make_shared()
        shared.write("mbt_level2", 7, "node")
        assert shared.select("mbt_level2") is False
        assert shared.read("mbt_level2", 7) == "node"

    def test_unknown_view_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make_shared().select("hypercuts")

    def test_reclaimed_bits_depend_on_selection(self):
        shared = self.make_shared()
        assert shared.reclaimed_rule_bits() == 0
        shared.select("bst_nodes")
        assert shared.reclaimed_rule_bits() == 400_000

    def test_allocate_through_view(self):
        shared = self.make_shared()
        assert shared.allocate("mbt_level2") == 0

    def test_report_contents(self):
        shared = self.make_shared()
        shared.select("bst_nodes")
        report = shared.report()
        assert report.active_view == "bst_nodes"
        assert report.total_bits == 512 * 68
        assert set(report.views) == {"mbt_level2", "bst_nodes"}
        assert report.reclaimed_bits == 400_000

    def test_identical_view_names_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedMemoryBank("s", 8, 8, SharedView("x", ""), SharedView("x", ""))

    def test_negative_reclaim_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedMemoryBank("s", 8, 8, SharedView("a", ""), SharedView("b", ""), reclaimable_bits=-1)


class TestMemoryImage:
    def test_add_and_accounting(self):
        image = MemoryImage("img")
        image.add("mbt_l1", 0, 0xAB, payload={"node": 1})
        image.add("mbt_l1", 1, 0xCD)
        image.add("rule_filter", 7, 0x11)
        assert len(image) == 3
        assert image.blocks() == ["mbt_l1", "rule_filter"]
        assert image.writes_per_block() == {"mbt_l1": 2, "rule_filter": 1}

    def test_invalid_records_rejected(self):
        image = MemoryImage("img")
        with pytest.raises(MemoryModelError):
            image.add("m", -1, 0)
        with pytest.raises(MemoryModelError):
            image.add("m", 0, -5)

    def test_binary_round_trip(self):
        image = MemoryImage("img")
        image.add("mbt_l1", 3, 0xDEADBEEF)
        image.add("labels", 1, 42)
        blob = image.to_bytes()
        decoded = MemoryImage.from_bytes(blob, name="copy")
        assert len(decoded) == 2
        assert decoded.writes[0].block == "mbt_l1"
        assert decoded.writes[0].address == 3
        assert decoded.writes[0].data == 0xDEADBEEF

    def test_bad_magic_rejected(self):
        with pytest.raises(MemoryModelError):
            MemoryImage.from_bytes(b"XXXX" + b"\x00" * 16)

    def test_extend_copies_records(self):
        image = MemoryImage("img")
        image.extend([MemoryWrite("a", 0, 1), MemoryWrite("b", 1, 2)])
        assert len(image) == 2

    def test_apply_uploads_into_bank(self):
        bank = MemoryBank("device")
        bank.new_block("mbt_l1", 16, 68)
        bank.new_block("labels", 16, 20)
        image = MemoryImage("img")
        image.add("mbt_l1", 2, 99, payload="node-2")
        image.add("labels", 5, 7)
        words, blocks = image.apply(bank)
        assert (words, blocks) == (2, 2)
        assert bank.get("mbt_l1").peek(2) == "node-2"
        assert bank.get("labels").peek(5) == 7
        assert bank.total_writes == 2

"""Unit tests for the classifier configuration and the dimension mapping."""

from __future__ import annotations

import pytest

from repro.core.config import ClassifierConfig, CombinerMode, IpAlgorithm, MemoryProvisioning
from repro.core.dimensions import (
    DIMENSIONS,
    IP_DIMENSIONS,
    PORT_DIMENSIONS,
    dimension_label_width,
    packet_dimension_values,
    rule_dimension_specs,
)
from repro.exceptions import ConfigurationError
from repro.rules.packet import PacketHeader
from repro.rules.rule import Rule


class TestMemoryProvisioning:
    def test_default_matches_table_vi_budgets(self):
        provisioning = MemoryProvisioning()
        assert provisioning.total_mbt_bits() == pytest.approx(543_000, rel=0.01)
        assert provisioning.total_bst_bits() == pytest.approx(49_000, rel=0.01)

    def test_rule_filter_budget(self):
        provisioning = MemoryProvisioning()
        assert provisioning.rule_filter_bits() == 8192 * 96

    def test_reclaim_gives_about_4k_extra_rules(self):
        provisioning = MemoryProvisioning()
        assert provisioning.extra_rules_when_bst() == pytest.approx(4000, rel=0.15)
        assert provisioning.reclaimable_bits() < provisioning.total_mbt_bits()

    def test_per_segment_accessors(self):
        provisioning = MemoryProvisioning()
        assert provisioning.mbt_bits_per_segment() * 4 == provisioning.total_mbt_bits()
        assert provisioning.bst_bits_per_segment() * 4 == provisioning.total_bst_bits()


class TestClassifierConfig:
    def test_defaults_reproduce_the_prototype(self):
        config = ClassifierConfig()
        assert config.ip_algorithm is IpAlgorithm.MBT
        assert config.combiner_mode is CombinerMode.CROSS_PRODUCT
        assert config.label_layout.total_bits == 68
        assert config.clock_mhz == pytest.approx(133.51)
        assert config.mbt_strides == (5, 5, 6)

    def test_rule_capacity_by_algorithm(self):
        mbt = ClassifierConfig(ip_algorithm=IpAlgorithm.MBT)
        bst = ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
        assert mbt.rule_capacity() == 8192
        assert bst.rule_capacity() > 12000

    def test_ip_memory_bits_by_algorithm(self):
        mbt = ClassifierConfig(ip_algorithm=IpAlgorithm.MBT)
        bst = ClassifierConfig(ip_algorithm=IpAlgorithm.BST)
        assert mbt.ip_memory_bits() > 10 * bst.ip_memory_bits()

    def test_with_helpers_return_copies(self):
        config = ClassifierConfig()
        switched = config.with_ip_algorithm(IpAlgorithm.BST)
        assert switched.ip_algorithm is IpAlgorithm.BST
        assert config.ip_algorithm is IpAlgorithm.MBT
        fast_path = config.with_combiner(CombinerMode.FIRST_LABEL)
        assert fast_path.combiner_mode is CombinerMode.FIRST_LABEL

    def test_describe_contains_key_fields(self):
        info = ClassifierConfig().describe()
        assert info["label_key_bits"] == 68
        assert info["rule_capacity"] == 8192

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mbt_strides": (5, 5, 5)},
            {"clock_mhz": 0},
            {"min_packet_bytes": 0},
            {"mbt_cycles_per_level": 0},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClassifierConfig(**kwargs)


class TestDimensions:
    def test_dimension_names(self):
        assert len(DIMENSIONS) == 7
        assert set(IP_DIMENSIONS) | set(PORT_DIMENSIONS) | {"protocol"} == set(DIMENSIONS)

    def test_rule_dimension_specs(self):
        rule = Rule.build(0, 0, src="10.1.2.0/24", dst="192.168.0.0/16",
                          src_port="0:65535", dst_port="80:80", protocol=6)
        specs = rule_dimension_specs(rule)
        assert specs["src_ip_hi"] == (0x0A01, 16)
        assert specs["src_ip_lo"] == (0x0200, 8)
        assert specs["dst_ip_hi"] == (0xC0A8, 16)
        assert specs["dst_ip_lo"] == (0, 0)
        assert specs["src_port"] == (0, 65535)
        assert specs["dst_port"] == (80, 80)
        assert specs["protocol"] == (False, 6)

    def test_wildcard_rule_specs(self):
        specs = rule_dimension_specs(Rule.build(0, 0))
        assert specs["src_ip_hi"] == (0, 0)
        assert specs["protocol"] == (True, 0)

    def test_packet_dimension_values(self):
        packet = PacketHeader.from_strings("10.1.2.3", "192.168.9.1", 1234, 80, 6)
        values = packet_dimension_values(packet)
        assert values["src_ip_hi"] == 0x0A01
        assert values["src_ip_lo"] == 0x0203
        assert values["dst_port"] == 80
        assert values["protocol"] == 6

    def test_specs_and_values_are_consistent(self, small_acl_ruleset, small_trace):
        # If a rule matches a packet, then for every dimension the packet's
        # value must fall inside the rule's dimension spec — the property the
        # whole decomposition relies on.
        from repro.fields.prefix import prefix_contains

        for packet in small_trace[:30]:
            values = packet_dimension_values(packet)
            for rule in small_acl_ruleset:
                if not rule.matches(packet):
                    continue
                specs = rule_dimension_specs(rule)
                for dimension in IP_DIMENSIONS:
                    value, length = specs[dimension]
                    assert prefix_contains(value, length, values[dimension], width=16)
                for dimension in PORT_DIMENSIONS:
                    low, high = specs[dimension]
                    assert low <= values[dimension] <= high
                wildcard, protocol_value = specs["protocol"]
                assert wildcard or protocol_value == values["protocol"]

    def test_dimension_label_width(self):
        assert dimension_label_width("src_ip_hi", 13, 7, 2) == 13
        assert dimension_label_width("dst_port", 13, 7, 2) == 7
        assert dimension_label_width("protocol", 13, 7, 2) == 2
        with pytest.raises(KeyError):
            dimension_label_width("vlan", 13, 7, 2)

#!/usr/bin/env python3
"""Compatibility shim for environments without PEP 660 support.

All packaging metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` / legacy editable installs on toolchains that
lack the ``wheel`` package (modern ``pip install -e .`` never reads it).
"""

from setuptools import setup

setup()
